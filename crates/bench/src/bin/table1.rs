//! Table 1 — statistics of the graph datasets: the paper tabulates vertex
//! count, edge count and average degree of LiveJournal, Twitter and
//! Friendster; this prints the same columns for the synthetic stand-ins
//! plus the skew diagnostics that justify the substitution (DESIGN.md §3).

use bpart_bench::{banner, datasets, f3, render_table};
use bpart_graph::stats;

fn main() {
    banner("Table 1", "dataset statistics (synthetic stand-ins)");
    let header: Vec<String> = [
        "dataset",
        "# vertices",
        "# edges",
        "avg degree",
        "max degree",
        "top-1% mass",
        "gini",
        "alpha",
        "clustering",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (name, g) in datasets() {
        let s = stats::degree_stats(&g);
        rows.push(vec![
            name,
            s.vertices.to_string(),
            s.edges.to_string(),
            format!("{:.2}", s.average),
            s.max.to_string(),
            f3(s.top1pct_mass),
            f3(s.gini),
            s.powerlaw_alpha
                .map_or("-".to_string(), |a| format!("{a:.2}")),
            f3(stats::approx_clustering_coefficient(&g, 500, 30, 0x7AB1)),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "paper (full-scale): LiveJournal 7.5M / 225M / 29.99, Twitter 41.39M / 1.48B / 35.72,\n\
         Friendster 65.60M / 3.6B / 54.87. Average degrees match exactly; sizes are scaled\n\
         by BPART_SCALE x the ~500x-reduced presets. Twitter is the most skewed (highest\n\
         top-1% mass / gini), Friendster the least — matching the paper's per-dataset\n\
         imbalance ordering."
    );
}
