//! Fault-tolerance overhead — modelled running time of PageRank and
//! DeepWalk with and without an injected machine crash, per partitioner.
//!
//! The crashed run rolls back to its last checkpoint and replays, so the
//! answers are identical to the fault-free run; the columns show what the
//! recovery costs under each partitioning scheme (a balanced partition
//! also balances the checkpoint and replay work). Reported per scheme:
//! the fault-free time, the faulted time, the recovery share, and the
//! overhead factor.

use bpart_bench::{banner, dataset, f3, metric_slug, render_table, schemes, write_history_record};
use bpart_cluster::{Cluster, CostModel, FaultPlan};
use bpart_engine::{apps::PageRank, IterationEngine};
use bpart_walker::{apps::DeepWalk, WalkEngine, WalkStarts};
use std::sync::Arc;

const MACHINES: usize = 8;
const CRASH_AT: usize = 7;
const CHECKPOINT_EVERY: usize = 2;
const SEED: u64 = 0xFA013;

struct Outcome {
    clean: f64,
    faulted: f64,
    recovery: f64,
    replayed: usize,
}

impl Outcome {
    fn row_cells(&self) -> Vec<String> {
        vec![
            f3(self.clean),
            f3(self.faulted),
            f3(self.recovery),
            self.replayed.to_string(),
            format!("{:.3}x", self.faulted / self.clean),
        ]
    }
}

fn main() {
    banner(
        "Fault tolerance",
        "crash at superstep 7, checkpoint every 2, 8 machines",
    );
    let graph = Arc::new(dataset("lj_like"));
    let plan = FaultPlan::new().crash(CRASH_AT, 1);

    let mut hist: Vec<(String, f64)> = Vec::new();
    for (app, slug, run_app) in [
        (
            "PageRank (10 iters)",
            "pagerank",
            pagerank as fn(&Arc<_>, &Arc<_>, &FaultPlan) -> Outcome,
        ),
        ("DeepWalk (len 10)", "deepwalk", deepwalk),
    ] {
        let header: Vec<String> = [
            "scheme", "clean", "faulted", "recovery", "replays", "overhead",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut rows = Vec::new();
        for scheme in schemes() {
            let partition = Arc::new(scheme.partition(&graph, MACHINES));
            let outcome = run_app(&graph, &partition, &plan);
            let prefix = format!("{slug}_{}", metric_slug(scheme.name()));
            // Modelled times are deterministic, so every column is safe
            // to watch in `bpart obs diff`.
            hist.push((format!("{prefix}_clean"), outcome.clean));
            hist.push((format!("{prefix}_faulted"), outcome.faulted));
            hist.push((format!("{prefix}_recovery"), outcome.recovery));
            let mut row = vec![scheme.name().to_string()];
            row.extend(outcome.row_cells());
            rows.push(row);
        }
        println!("({app})");
        println!("{}", render_table(&header, &rows));
    }
    write_history_record(
        "faults",
        "lj_like",
        &[
            ("machines", MACHINES.to_string()),
            ("crash_at", CRASH_AT.to_string()),
            ("checkpoint_every", CHECKPOINT_EVERY.to_string()),
        ],
        &hist,
    );
    println!(
        "expected shape: recovery adds the rolled-back supersteps plus the\n\
         restore cost; the overhead factor stays modest with checkpointing\n\
         and is smallest for schemes whose balanced load also balances the\n\
         replayed work (BPart)."
    );
}

fn pagerank(
    graph: &Arc<bpart_graph::CsrGraph>,
    partition: &Arc<bpart_core::Partition>,
    plan: &FaultPlan,
) -> Outcome {
    let app = PageRank::new(10);
    let engine = |faulted: bool| {
        let mut e = IterationEngine::new(
            Cluster::new(graph.clone(), partition.clone()),
            CostModel::default(),
            Default::default(),
        )
        .with_checkpoint_every(CHECKPOINT_EVERY);
        if faulted {
            e = e.with_faults(plan.clone());
        }
        e
    };
    let clean = engine(false).run(&app);
    let faulted = engine(true).run(&app);
    assert_eq!(
        clean.values, faulted.values,
        "recovery must not change results"
    );
    Outcome {
        clean: clean.telemetry.total_time(),
        faulted: faulted.telemetry.total_time(),
        recovery: faulted.telemetry.total_recovery_time(),
        replayed: faulted.telemetry.replayed_supersteps(),
    }
}

fn deepwalk(
    graph: &Arc<bpart_graph::CsrGraph>,
    partition: &Arc<bpart_core::Partition>,
    plan: &FaultPlan,
) -> Outcome {
    let app = DeepWalk::new(10);
    let starts = WalkStarts::PerVertex(1);
    let engine = |faulted: bool| {
        let mut e = WalkEngine::new(
            Cluster::new(graph.clone(), partition.clone()),
            CostModel::default(),
            Default::default(),
        )
        .with_recording()
        .with_checkpoint_every(CHECKPOINT_EVERY);
        if faulted {
            e = e.with_faults(plan.clone());
        }
        e
    };
    let clean = engine(false).run(&app, &starts, SEED);
    let faulted = engine(true).run(&app, &starts, SEED);
    assert_eq!(clean.paths, faulted.paths, "recovery must not change walks");
    Outcome {
        clean: clean.telemetry.total_time(),
        faulted: faulted.telemetry.total_time(),
        recovery: faulted.telemetry.total_recovery_time(),
        replayed: faulted.telemetry.replayed_supersteps(),
    }
}
