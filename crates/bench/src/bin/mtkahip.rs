//! §4.2 (text) + §5 — comparison with the non-streaming baselines: the
//! Mt-KaHIP-style multilevel partitioner balances vertices tightly
//! (paper: bias 0.03) but leaves edges skewed (paper: 2.59 / 2.56 / 0.70),
//! and GD (projected gradient descent) balances both dimensions but costs
//! far more time and only supports power-of-two part counts. BPart keeps
//! both biases under 0.1 at streaming cost.

use bpart_bench::{banner, datasets, f3, render_table, timed};
use bpart_core::gd::GdPartitioner;
use bpart_core::prelude::*;
use bpart_multilevel::Multilevel;

fn main() {
    banner(
        "Mt-KaHIP comparison (§4.2)",
        "bias at k = 8: multilevel offline vs BPart",
    );
    let header: Vec<String> = [
        "dataset",
        "scheme",
        "vertex bias",
        "edge bias",
        "edge-cut",
        "time (s)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (name, g) in datasets() {
        for scheme in [
            &Multilevel::default() as &dyn Partitioner,
            &GdPartitioner::default(),
            &BPart::default(),
        ] {
            let (p, secs) = timed(|| scheme.partition(&g, 8));
            rows.push(vec![
                name.clone(),
                scheme.name().to_string(),
                f3(metrics::bias(p.vertex_counts())),
                f3(metrics::bias(p.edge_counts())),
                f3(metrics::edge_cut_ratio(&g, &p)),
                format!("{secs:.3}"),
            ]);
        }
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape: the multilevel baseline's vertex bias is tiny but its edge\n\
         bias is large (the paper's 0.70-2.59 range); GD balances both dimensions but\n\
         costs an order of magnitude more time than BPart (and is limited to\n\
         power-of-two part counts); BPart keeps both < 0.1 at streaming cost."
    );
}
