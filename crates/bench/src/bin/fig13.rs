//! Figure 13 — ratio of total machine waiting time to total running time
//! for 5|V| random walks of 4 steps, on 4- and 8-machine clusters.

use bpart_bench::{banner, datasets, f3, render_table};
use bpart_core::prelude::*;
use bpart_walker::{apps::SimpleRandomWalk, WalkEngine, WalkStarts};
use std::sync::Arc;

fn main() {
    banner(
        "Figure 13",
        "waiting-time ratio, 4 and 8 machines, 5|V| walks x 4 steps",
    );
    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(Fennel::default()),
        Box::new(BPart::default()),
    ];
    for k in [4usize, 8] {
        let header: Vec<String> = {
            let mut h = vec!["scheme".to_string()];
            h.extend(datasets().iter().map(|(n, _)| n.clone()));
            h
        };
        let mut rows = Vec::new();
        for scheme in &schemes {
            let mut row = vec![scheme.name().to_string()];
            for (_, g) in datasets() {
                let g = Arc::new(g);
                let p = Arc::new(scheme.partition(&g, k));
                let run = WalkEngine::default_for(g.clone(), p).run(
                    &SimpleRandomWalk::new(4),
                    &WalkStarts::PerVertex(5),
                    0xF1613,
                );
                row.push(f3(run.telemetry.waiting_ratio()));
            }
            rows.push(row);
        }
        println!("({} machines)", k);
        println!("{}", render_table(&header, &rows));
    }
    println!(
        "expected shape: Chunk-V/Chunk-E/Fennel waste a large fraction of machine\n\
         time waiting (paper: ~45% at 4 machines, ~55% at 8, up to 70%); BPart\n\
         stays far lower (paper: ~10% and ~20%)."
    );
}
