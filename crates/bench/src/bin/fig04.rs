//! Figure 4 — per-machine computing loads (walk steps) in each iteration:
//! 5|V| simple random walks of 4 steps on the Twitter-like graph, 4
//! machines, for Chunk-V, Chunk-E and Fennel.

use bpart_bench::{banner, dataset, render_table};
use bpart_core::prelude::*;
use bpart_walker::{apps::SimpleRandomWalk, WalkEngine, WalkStarts};
use std::sync::Arc;

fn main() {
    banner(
        "Figure 4",
        "per-machine walk steps per iteration, twitter_like, 4 machines, 5|V| walks x 4 steps",
    );
    let g = Arc::new(dataset("twitter_like"));
    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(Fennel::default()),
    ];

    let header: Vec<String> = ["scheme", "iter", "M0", "M1", "M2", "M3"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for scheme in &schemes {
        let p = Arc::new(scheme.partition(&g, 4));
        let run = WalkEngine::default_for(g.clone(), p).run(
            &SimpleRandomWalk::new(4),
            &WalkStarts::PerVertex(5),
            0xF164,
        );
        for (i, rec) in run.telemetry.records().iter().enumerate() {
            let mut row = vec![scheme.name().to_string(), format!("Iter{i}")];
            row.extend(rec.compute.iter().map(|c| format!("{c:.0}")));
            rows.push(row);
        }
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape: loads are highly imbalanced across machines for all three\n\
         schemes (even Chunk-V/Fennel, whose iteration-0 starts are balanced, skew\n\
         as walkers pile onto the hub machine)."
    );
}
