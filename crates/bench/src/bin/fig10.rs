//! Figure 10 — balanced degree measured with the bias metric: each point
//! is (vertex bias, edge bias) for one scheme at one subgraph count
//! (k = 4, 8, 16) on each dataset. Vertex-balanced schemes hug the y-axis,
//! edge-balanced ones the x-axis; BPart sits near the origin.

use bpart_bench::{banner, datasets, f3, render_table};
use bpart_core::prelude::*;

fn main() {
    banner(
        "Figure 10",
        "bias scatter (vertex bias, edge bias), k in {4, 8, 16}",
    );
    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(Fennel::default()),
        Box::new(BPart::default()),
    ];
    let header: Vec<String> = ["dataset", "scheme", "k", "vertex bias", "edge bias"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for (name, g) in datasets() {
        let mut rows = Vec::new();
        for scheme in &schemes {
            for k in [4usize, 8, 16] {
                let p = scheme.partition(&g, k);
                rows.push(vec![
                    name.clone(),
                    scheme.name().to_string(),
                    k.to_string(),
                    f3(metrics::bias(p.vertex_counts())),
                    f3(metrics::bias(p.edge_counts())),
                ]);
            }
        }
        println!("{}", render_table(&header, &rows));
    }
    println!(
        "expected shape: Chunk-V/Fennel have ~0 vertex bias but large (and k-growing)\n\
         edge bias; Chunk-E the reverse; BPart stays < 0.1 in BOTH dimensions at every k."
    );
}
