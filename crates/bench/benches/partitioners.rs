//! Criterion benchmarks: partitioning throughput of every scheme
//! (Table 2's measurement as a statistically sound microbenchmark).

use bpart_core::prelude::*;
use bpart_graph::generate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_partitioners(c: &mut Criterion) {
    let graph = generate::twitter_like().generate_scaled(0.05);
    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(HashPartitioner::default()),
        Box::new(Fennel::default()),
        Box::new(BPart::default()),
        Box::new(bpart_multilevel::Multilevel::default()),
    ];
    let mut group = c.benchmark_group("partition_twitter_like_5pct_k8");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.sample_size(10);
    for scheme in &schemes {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            scheme,
            |b, scheme| b.iter(|| scheme.partition(&graph, 8)),
        );
    }
    group.finish();
}

fn bench_partition_scaling(c: &mut Criterion) {
    // BPart cost versus the number of requested parts.
    let graph = generate::twitter_like().generate_scaled(0.05);
    let mut group = c.benchmark_group("bpart_vs_num_parts");
    group.sample_size(10);
    for k in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| BPart::default().partition(&graph, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_partition_scaling);
criterion_main!(benches);
