//! Criterion benchmarks: cost of BPart's design knobs (the quality side of
//! these ablations is the `ablation` harness binary).

use bpart_core::prelude::*;
use bpart_graph::generate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_indicator_weight(c: &mut Criterion) {
    let graph = generate::twitter_like().generate_scaled(0.02);
    let mut group = c.benchmark_group("bpart_indicator_weight_c");
    group.sample_size(10);
    for cw in [0.0f64, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(cw), &cw, |b, &cw| {
            b.iter(|| {
                BPart::new(BPartConfig {
                    c: cw,
                    ..Default::default()
                })
                .partition(&graph, 8)
            })
        });
    }
    group.finish();
}

fn bench_layer_budget(c: &mut Criterion) {
    let graph = generate::twitter_like().generate_scaled(0.02);
    let mut group = c.benchmark_group("bpart_max_layers");
    group.sample_size(10);
    for layers in [1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(layers),
            &layers,
            |b, &layers| {
                b.iter(|| {
                    BPart::new(BPartConfig {
                        max_layers: layers,
                        ..Default::default()
                    })
                    .partition(&graph, 8)
                })
            },
        );
    }
    group.finish();
}

fn bench_stream_order(c: &mut Criterion) {
    let graph = generate::twitter_like().generate_scaled(0.02);
    let mut group = c.benchmark_group("bpart_stream_order");
    group.sample_size(10);
    for (label, order) in [
        ("natural", StreamOrder::Natural),
        ("random", StreamOrder::Random(5)),
        ("bfs", StreamOrder::Bfs),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &order, |b, order| {
            b.iter(|| {
                BPart::new(BPartConfig {
                    order: *order,
                    ..Default::default()
                })
                .partition(&graph, 8)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_indicator_weight,
    bench_layer_budget,
    bench_stream_order
);
criterion_main!(benches);
