//! Criterion benchmarks: engine throughput — PageRank iterations and
//! random-walk stepping — under contrasting partitioners.

use bpart_core::prelude::*;
use bpart_engine::{apps as eapps, IterationEngine};
use bpart_graph::generate;
use bpart_walker::{apps as wapps, WalkEngine, WalkStarts};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

fn bench_pagerank(c: &mut Criterion) {
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.02));
    let mut group = c.benchmark_group("pagerank_5iter_8machines");
    group.throughput(Throughput::Elements(graph.num_edges() as u64 * 5));
    group.sample_size(10);
    for scheme in [
        &ChunkV as &dyn Partitioner,
        &HashPartitioner::default(),
        &BPart::default(),
    ] {
        let partition = Arc::new(scheme.partition(&graph, 8));
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &partition,
            |b, partition| {
                b.iter(|| {
                    IterationEngine::default_for(graph.clone(), partition.clone())
                        .run(&eapps::PageRank::new(5))
                })
            },
        );
    }
    group.finish();
}

fn bench_walks(c: &mut Criterion) {
    let graph = Arc::new(generate::friendster_like().generate_scaled(0.02));
    let starts = WalkStarts::PerVertex(2);
    let mut group = c.benchmark_group("randomwalk_4steps_8machines");
    group.throughput(Throughput::Elements(graph.num_vertices() as u64 * 2 * 4));
    group.sample_size(10);
    for scheme in [
        &ChunkE as &dyn Partitioner,
        &HashPartitioner::default(),
        &BPart::default(),
    ] {
        let partition = Arc::new(scheme.partition(&graph, 8));
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &partition,
            |b, partition| {
                b.iter(|| {
                    WalkEngine::default_for(graph.clone(), partition.clone()).run(
                        &wapps::SimpleRandomWalk::new(4),
                        &starts,
                        9,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_node2vec_sampling(c: &mut Criterion) {
    // Rejection sampling cost per step (KnightKing's trick vs plain walks).
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.02));
    let partition = Arc::new(BPart::default().partition(&graph, 8));
    let starts = WalkStarts::PerVertex(1);
    let mut group = c.benchmark_group("walk_apps_10steps");
    group.sample_size(10);
    let apps: Vec<Box<dyn bpart_walker::WalkApp>> = vec![
        Box::new(wapps::DeepWalk::new(10)),
        Box::new(wapps::Node2vec::new(2.0, 0.5, 10)),
        Box::new(wapps::Ppr::new(0.1, 10)),
    ];
    for app in &apps {
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), app, |b, app| {
            b.iter(|| {
                WalkEngine::default_for(graph.clone(), partition.clone()).run(
                    app.as_ref(),
                    &starts,
                    13,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pagerank,
    bench_walks,
    bench_node2vec_sampling
);
criterion_main!(benches);
