//! Criterion microbenchmarks for the four hot-path kernels of the speed
//! pass (DESIGN.md §12): the branchless flat-array score loop, cached
//! alias-table sampling, the arena-backed superstep exchange, and the
//! zero-copy binary graph load. Each group reports element (or byte)
//! throughput so regressions show up as rate drops, not just time blips.
//!
//!     cargo bench -p bpart-bench --bench hotpath

use bpart_cluster::{Exchange, MessageArena, Router};
use bpart_core::bpart::WeightedStream;
use bpart_core::prelude::*;
use bpart_graph::{generate, io, CsrGraph};
use bpart_walker::{CachedTransitions, Walker};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// The twitter_like preset at 5% — big enough that the score loop
/// dominates, small enough for tight bench iterations.
fn bench_graph() -> CsrGraph {
    generate::twitter_like().generate_scaled(0.05)
}

/// Flat-array phase-1 scoring: the sequential streaming pass whose inner
/// loop is the branchless per-partition reduction (one Fennel config, one
/// BPart phase-1 config). Throughput is edges/s — the unit the CI gate
/// watches.
fn bench_flat_scoring(c: &mut Criterion) {
    let graph = bench_graph();
    let mut group = c.benchmark_group("hotpath_flat_scoring");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.sample_size(10);
    group.bench_function("fennel_seq_k8", |b| {
        b.iter(|| Fennel::default().partition(&graph, 8))
    });
    group.bench_function("bpart_p1_seq_k8", |b| {
        b.iter(|| WeightedStream::default().partition(&graph, 8))
    });
    group.finish();
}

/// Cached alias sampling: repeated weighted draws from the same
/// neighborhoods, which after the first visit hit the per-vertex (or
/// shared per-degree uniform) alias table instead of rebuilding it.
fn bench_alias_sampling(c: &mut Criterion) {
    let graph = generate::erdos_renyi(2_000, 60_000, 7);
    let vertices: Vec<_> = graph
        .vertices()
        .filter(|&v| graph.out_degree(v) > 0)
        .collect();
    const DRAWS: u64 = 100_000;
    let mut group = c.benchmark_group("hotpath_alias_sampling");
    group.throughput(Throughput::Elements(DRAWS));
    group.sample_size(10);
    for max_weight in [1u32, 16] {
        let label = if max_weight == 1 {
            "uniform"
        } else {
            "weighted"
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &max_weight,
            |b, &max_weight| {
                let cached = CachedTransitions::synthetic(&graph, max_weight);
                let mut walker = Walker::new(0, vertices[0], 42);
                b.iter(|| {
                    let mut acc = 0u64;
                    for i in 0..DRAWS {
                        let v = vertices[i as usize % vertices.len()];
                        if let Some(next) = cached.sample(&mut walker, &graph, v) {
                            acc = acc.wrapping_add(next as u64);
                        }
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

/// Arena-backed superstep exchange: stage messages into per-machine
/// arenas, run the capacity-preserving barrier, drain the inboxes, and
/// hand the rows back — the walker/iteration engines' per-superstep
/// messaging round trip, with zero steady-state allocation.
fn bench_arena_exchange(c: &mut Criterion) {
    const K: usize = 8;
    const MSGS_PER_MACHINE: usize = 4_000;
    let mut group = c.benchmark_group("hotpath_arena_exchange");
    group.throughput(Throughput::Elements((K * MSGS_PER_MACHINE) as u64));
    group.sample_size(20);
    group.bench_function("k8_roundtrip", |b| {
        let mut arenas: Vec<MessageArena<u64>> = (0..K).map(|_| MessageArena::new(K)).collect();
        let mut router: Router<u64> = Router::new(K);
        let mut ex: Exchange<u64> = Exchange::default();
        let mut inbox_total = 0u64;
        b.iter(|| {
            for (from, arena) in arenas.iter_mut().enumerate() {
                for i in 0..MSGS_PER_MACHINE {
                    arena.push(
                        ((from + i) % K) as u32,
                        (from * MSGS_PER_MACHINE + i) as u64,
                    );
                }
            }
            router
                .put_rows(arenas.iter_mut().map(|a| a.take_filled()).collect())
                .unwrap();
            router.exchange_into(&mut ex);
            for inbox in &mut ex.inboxes {
                inbox_total += inbox.len() as u64;
                inbox.clear();
            }
            for (arena, row) in arenas.iter_mut().zip(router.take_rows()) {
                arena.put_drained(row);
            }
            black_box(inbox_total)
        })
    });
    group.finish();
}

/// Binary graph decode: the validated zero-copy byte parser against the
/// same bytes through the owned streaming reader. Throughput is bytes/s
/// of the on-disk format.
fn bench_binfmt_load(c: &mut Criterion) {
    let graph = bench_graph();
    let mut bytes = Vec::new();
    io::write_binary(&graph, &mut bytes).unwrap();
    let mut group = c.benchmark_group("hotpath_binfmt_load");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.sample_size(10);
    group.bench_function("read_binary_bytes", |b| {
        b.iter(|| io::read_binary_bytes(black_box(&bytes)).unwrap())
    });
    group.bench_function("read_binary_owned", |b| {
        b.iter(|| io::read_binary(black_box(bytes.as_slice())).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flat_scoring,
    bench_alias_sampling,
    bench_arena_exchange,
    bench_binfmt_load
);
criterion_main!(benches);
