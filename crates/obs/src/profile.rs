//! Continuous span-stack profiler.
//!
//! The tracer already maintains per-thread span nesting; this module turns
//! that into an always-on, low-overhead wall-clock profiler. Each thread
//! that opens spans registers a shared *live stack* of span names (pushed
//! on open, popped on close). A background sampler thread periodically
//! snapshots every registered stack and folds the observation into
//! flamegraph-compatible *folded stack* counts (`a;b;leaf N` — one line
//! per unique stack, `N` samples attributed to it). Because the snapshot
//! and the push/pop both hold the stack's mutex, a sample is always a
//! consistent prefix of what the thread actually had open — there are no
//! torn stacks by construction (the `proptest_profile` integration test
//! hammers this under churn).
//!
//! The folded text is exported three ways: `--profile-out`, the live
//! `/profile` endpoint, and — for the process backend — federated to the
//! driver inside the existing ObsReport frame so `bpart report --profile`
//! renders one cluster-wide flame view (`worker:N;...` prefixes).
//!
//! An optional [`SpanAlloc`] global-allocator wrapper attributes heap
//! bytes/allocations to the innermost live span of the allocating thread
//! (enable with [`set_alloc_profile_enabled`]; the `bpart` binary installs
//! it behind the `alloc-profile` cargo feature). The attribution path is
//! allocation-free and lock-free: a const-initialised thread-local cell
//! holds the current leaf name, and counts land in a fixed-size
//! linear-probe table of atomics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Duration;

/// Default wall-clock sampling period for [`start_sampler`]. Coarse spans
/// (supersteps, buffers, layers) live for milliseconds, so 2ms keeps the
/// flame view dense on short CI runs while the per-sample cost (one brief
/// mutex acquisition per live thread) stays far under the 3% overhead
/// gate.
pub const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_millis(2);

/// One thread's live stack of open span names, innermost last.
struct ThreadStack {
    stack: Mutex<Vec<&'static str>>,
}

struct SamplerHandle {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<()>,
}

struct ProfilerState {
    enabled: AtomicBool,
    /// Sampling rounds completed (each visits every registered thread).
    samples: AtomicU64,
    /// Non-empty-stack observations folded in (≥0 per thread per round).
    observations: AtomicU64,
    /// Weak registry: a thread's stack dies with its thread-local Arc, so
    /// short-lived worker threads (the buffered streaming engine spawns
    /// them per chunk) don't accumulate; the sampler prunes dead entries.
    threads: Mutex<Vec<Weak<ThreadStack>>>,
    folded: Mutex<HashMap<String, u64>>,
    sampler: Mutex<Option<SamplerHandle>>,
}

fn state() -> &'static ProfilerState {
    static STATE: OnceLock<ProfilerState> = OnceLock::new();
    STATE.get_or_init(|| ProfilerState {
        enabled: AtomicBool::new(false),
        samples: AtomicU64::new(0),
        observations: AtomicU64::new(0),
        threads: Mutex::new(Vec::new()),
        folded: Mutex::new(HashMap::new()),
        sampler: Mutex::new(None),
    })
}

thread_local! {
    /// This thread's shared live stack, registered on first span open.
    static LIVE: Arc<ThreadStack> = {
        let ts = Arc::new(ThreadStack {
            stack: Mutex::new(Vec::new()),
        });
        state()
            .threads
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::downgrade(&ts));
        ts
    };
    /// Innermost live span name for allocator attribution. A plain `Cell`
    /// (const-init, no destructor) so the allocator can read it without
    /// locking or allocating.
    static ALLOC_LEAF: std::cell::Cell<Option<&'static str>> =
        const { std::cell::Cell::new(None) };
}

/// Turns live-stack maintenance on or off process-wide. Off is the
/// default: span open/close then skips the profiler entirely (one relaxed
/// load). The tracer records which spans pushed, so toggling mid-span
/// never unbalances a stack.
pub fn set_profile_enabled(enabled: bool) {
    state().enabled.store(enabled, Ordering::Relaxed);
}

/// Whether live-stack maintenance is currently on.
pub fn profile_enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// Called by the tracer when a span opens. Returns whether the name was
/// pushed (so the close knows whether to pop).
pub(crate) fn push_live(name: &'static str) -> bool {
    if !state().enabled.load(Ordering::Relaxed) {
        return false;
    }
    let pushed = LIVE
        .try_with(|ts| {
            ts.stack
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(name);
        })
        .is_ok();
    if pushed {
        let _ = ALLOC_LEAF.try_with(|leaf| leaf.set(Some(name)));
    }
    pushed
}

/// Called by the tracer when a pushed span closes.
pub(crate) fn pop_live(name: &'static str) {
    let new_leaf = LIVE.try_with(|ts| {
        let mut stack = ts.stack.lock().unwrap_or_else(|p| p.into_inner());
        // Guards drop LIFO within a thread; be defensive about leaked
        // guards anyway (mirrors the tracer's own OPEN handling).
        if stack.last() == Some(&name) {
            stack.pop();
        } else if let Some(i) = stack.iter().rposition(|&n| std::ptr::eq(n, name)) {
            stack.remove(i);
        }
        stack.last().copied()
    });
    if let Ok(leaf) = new_leaf {
        let _ = ALLOC_LEAF.try_with(|cell| cell.set(leaf));
    }
}

/// Takes one sample: folds every registered thread's current stack into
/// the folded-count table. Called on a timer by [`start_sampler`];
/// exposed so tests can sample deterministically.
pub fn sample_once() {
    let s = state();
    let mut threads = s.threads.lock().unwrap_or_else(|p| p.into_inner());
    threads.retain(|w| w.strong_count() > 0);
    let stacks: Vec<Arc<ThreadStack>> = threads.iter().filter_map(Weak::upgrade).collect();
    drop(threads);
    let mut observed = 0u64;
    let mut folded = s.folded.lock().unwrap_or_else(|p| p.into_inner());
    for ts in &stacks {
        let stack = ts.stack.lock().unwrap_or_else(|p| p.into_inner());
        if stack.is_empty() {
            continue;
        }
        let key = stack.join(";");
        drop(stack);
        *folded.entry(key).or_insert(0) += 1;
        observed += 1;
    }
    drop(folded);
    s.samples.fetch_add(1, Ordering::Relaxed);
    s.observations.fetch_add(observed, Ordering::Relaxed);
}

/// Sampling rounds taken since the last [`reset_profile`].
pub fn sample_count() -> u64 {
    state().samples.load(Ordering::Relaxed)
}

/// Non-empty-stack observations folded in since the last
/// [`reset_profile`]. The folded counts always sum to exactly this.
pub fn observation_count() -> u64 {
    state().observations.load(Ordering::Relaxed)
}

/// Discards all folded counts and sample/observation counters (the thread
/// registry survives — threads stay registered for their lifetime).
pub fn reset_profile() {
    let s = state();
    s.folded.lock().unwrap_or_else(|p| p.into_inner()).clear();
    s.samples.store(0, Ordering::Relaxed);
    s.observations.store(0, Ordering::Relaxed);
}

/// Snapshot of the folded counts, sorted by descending count then name
/// (deterministic output for exports and tests).
pub fn folded_snapshot() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = state()
        .folded
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .map(|(k, &v)| (k.clone(), v))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Renders the folded counts as flamegraph folded-stack text, one
/// `stack;frames leaf N` line per unique stack.
pub fn render_folded() -> String {
    let mut out = String::new();
    for (stack, count) in folded_snapshot() {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// Parses folded-stack text back into `(stack, count)` pairs. Lines
/// starting with `#` and blank lines are ignored (the exporters use `#`
/// for provenance comments). Returns a message naming the first bad line.
pub fn parse_folded(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: no count field: {line:?}", idx + 1));
        };
        let count: u64 = count
            .parse()
            .map_err(|_| format!("line {}: bad count {count:?}", idx + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", idx + 1));
        }
        out.push((stack.to_string(), count));
    }
    Ok(out)
}

/// Starts the background sampler at `interval` (idempotent: returns
/// `false` if one is already running). The thread also drives nothing
/// else — alert evaluation has its own thread — so stopping it cannot
/// stall other subsystems.
pub fn start_sampler(interval: Duration) -> bool {
    let mut slot = state().sampler.lock().unwrap_or_else(|p| p.into_inner());
    if slot.is_some() {
        return false;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("bpart-profiler".into())
        .spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                sample_once();
                std::thread::sleep(interval);
            }
        })
        .expect("spawn profiler sampler");
    *slot = Some(SamplerHandle { stop, join });
    true
}

/// Stops the background sampler (no-op when none is running) and waits
/// for it to exit, so counts are stable when the caller exports them.
pub fn stop_sampler() {
    let handle = state()
        .sampler
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .take();
    if let Some(handle) = handle {
        handle.stop.store(true, Ordering::Relaxed);
        let _ = handle.join.join();
    }
}

// ---------------------------------------------------------------------------
// Allocation attribution.

static ALLOC_PROFILE: AtomicBool = AtomicBool::new(false);

/// Turns allocator attribution on or off. Independent of the stack
/// sampler: it only matters when [`SpanAlloc`] is installed as the global
/// allocator (`--features alloc-profile` on the CLI).
pub fn set_alloc_profile_enabled(enabled: bool) {
    ALLOC_PROFILE.store(enabled, Ordering::Relaxed);
}

const ALLOC_SLOTS: usize = 512;

/// One attribution bucket: a span name (interned by pointer — names are
/// `&'static str` literals) plus byte/allocation tallies.
struct AllocSlot {
    name: AtomicPtr<u8>,
    len: AtomicUsize,
    bytes: AtomicU64,
    allocs: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: AllocSlot = AllocSlot {
    name: AtomicPtr::new(std::ptr::null_mut()),
    len: AtomicUsize::new(0),
    bytes: AtomicU64::new(0),
    allocs: AtomicU64::new(0),
};

static ALLOC_TABLE: [AllocSlot; ALLOC_SLOTS] = [EMPTY_SLOT; ALLOC_SLOTS];

/// Records `size` bytes against the innermost live span of this thread.
/// Must not allocate or take a lock: it runs inside the allocator.
fn record_alloc(size: usize) {
    let Ok(Some(name)) = ALLOC_LEAF.try_with(std::cell::Cell::get) else {
        return;
    };
    let ptr = name.as_ptr() as *mut u8;
    let home = (ptr as usize).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48;
    for probe in 0..ALLOC_SLOTS {
        let slot = &ALLOC_TABLE[(home + probe) % ALLOC_SLOTS];
        let cur = slot.name.load(Ordering::Acquire);
        let owned = if cur == ptr {
            true
        } else if cur.is_null() {
            match slot.name.compare_exchange(
                std::ptr::null_mut(),
                ptr,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    slot.len.store(name.len(), Ordering::Release);
                    true
                }
                Err(winner) => winner == ptr,
            }
        } else {
            false
        };
        if owned {
            slot.bytes.fetch_add(size as u64, Ordering::Relaxed);
            slot.allocs.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    // Table full: drop the sample (bounded-memory beats completeness here).
}

/// Per-span allocation tallies: `(span name, bytes, allocations)`, sorted
/// by descending bytes. Empty unless [`SpanAlloc`] is installed and
/// attribution was enabled.
pub fn alloc_snapshot() -> Vec<(String, u64, u64)> {
    let mut out = Vec::new();
    for slot in &ALLOC_TABLE {
        let ptr = slot.name.load(Ordering::Acquire);
        if ptr.is_null() {
            continue;
        }
        let len = slot.len.load(Ordering::Acquire);
        if len == 0 {
            continue; // racing publisher: name set, len not yet visible
        }
        // Safety: the pointer/len came from a `&'static str` span name.
        let name = unsafe {
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr as *const u8, len))
        };
        out.push((
            name.to_string(),
            slot.bytes.load(Ordering::Relaxed),
            slot.allocs.load(Ordering::Relaxed),
        ));
    }
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// A `GlobalAlloc` wrapper attributing allocation bytes/counts to the
/// innermost live span of the allocating thread. Install it behind a
/// cargo feature:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: bpart_obs::profile::SpanAlloc<std::alloc::System> =
///     bpart_obs::profile::SpanAlloc(std::alloc::System);
/// ```
pub struct SpanAlloc<A>(pub A);

// Safety: defers entirely to the wrapped allocator; the recording side
// channel never allocates, locks, or observes the returned pointer.
unsafe impl<A: std::alloc::GlobalAlloc> std::alloc::GlobalAlloc for SpanAlloc<A> {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = self.0.alloc(layout);
        if !p.is_null() && ALLOC_PROFILE.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        self.0.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = self.0.realloc(ptr, layout, new_size);
        if !p.is_null() && ALLOC_PROFILE.load(Ordering::Relaxed) && new_size > layout.size() {
            record_alloc(new_size - layout.size());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The profiler is process-global; tests that reset it serialize.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    #[test]
    fn samples_fold_live_stacks_and_counts_balance() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_trace_enabled(true);
        set_profile_enabled(true);
        reset_profile();
        {
            let _outer = crate::span("prof.outer");
            let _inner = crate::span("prof.inner");
            sample_once();
            sample_once();
        }
        // Spans closed: this thread's stack is empty, so further samples
        // add observations only from other (test-parallel) threads.
        let folded = folded_snapshot();
        let ours: u64 = folded
            .iter()
            .filter(|(k, _)| k.contains("prof.outer;prof.inner"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(ours, 2, "two samples saw the nested stack: {folded:?}");
        let total: u64 = folded.iter().map(|(_, v)| v).sum();
        assert_eq!(total, observation_count(), "folded counts must balance");
        assert!(sample_count() >= 2);
        set_profile_enabled(false);
    }

    #[test]
    fn toggling_mid_span_never_unbalances_the_stack() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_trace_enabled(true);
        set_profile_enabled(false);
        let unprofiled = crate::span("prof.toggle.outer");
        set_profile_enabled(true);
        {
            let _profiled = crate::span("prof.toggle.inner");
            reset_profile();
            sample_once();
            let folded = folded_snapshot();
            // The outer span predates enabling, so the observed stack
            // starts at the inner span.
            assert!(
                folded
                    .iter()
                    .any(|(k, _)| k == "prof.toggle.inner" || k.ends_with(";prof.toggle.inner")),
                "inner span must be live: {folded:?}"
            );
        }
        drop(unprofiled); // pops nothing from the live stack: never pushed
        reset_profile();
        sample_once();
        assert!(
            !folded_snapshot()
                .iter()
                .any(|(k, _)| k.contains("prof.toggle")),
            "all toggle spans must be gone from the live stack"
        );
        set_profile_enabled(false);
    }

    #[test]
    fn folded_round_trips_through_parse() {
        let text = "# provenance comment\na;b;c 12\nroot 3\n\n";
        let parsed = parse_folded(text).unwrap();
        assert_eq!(
            parsed,
            vec![("a;b;c".to_string(), 12), ("root".to_string(), 3)]
        );
        assert!(parse_folded("no-count-line\n").is_err());
        assert!(parse_folded("stack notanumber\n").is_err());
        assert!(parse_folded(" 7\n").is_err());
    }

    #[test]
    fn sampler_thread_starts_and_stops() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        assert!(start_sampler(Duration::from_millis(1)));
        assert!(!start_sampler(Duration::from_millis(1)), "idempotent");
        std::thread::sleep(Duration::from_millis(10));
        stop_sampler();
        stop_sampler(); // no-op
        assert!(sample_count() > 0);
        reset_profile();
    }

    #[test]
    fn alloc_table_attributes_to_the_live_leaf() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_trace_enabled(true);
        set_profile_enabled(true);
        set_alloc_profile_enabled(true);
        {
            let _leaf = crate::span("prof.alloc.leaf");
            // Exercise the recording path directly (the wrapper is only
            // installed as global allocator behind the CLI feature).
            record_alloc(1024);
            record_alloc(24);
        }
        set_alloc_profile_enabled(false);
        set_profile_enabled(false);
        let stats = alloc_snapshot();
        let (_, bytes, allocs) = stats
            .iter()
            .find(|(n, _, _)| n == "prof.alloc.leaf")
            .expect("leaf span must appear in alloc stats");
        assert!(*bytes >= 1048 && *allocs >= 2, "{stats:?}");
    }
}
