//! Live monitoring: a std-only background HTTP/1.1 server over the
//! tracer ring and metrics registry.
//!
//! Production systems are scraped while they run; a post-mortem trace
//! dump is no help three hours into a large partition job. [`start`]
//! binds a `std::net::TcpListener` (port `0` picks a free port — the
//! bound address is on the returned handle) and answers six read-only
//! endpoints from a background thread:
//!
//! | path        | body                                                  |
//! |-------------|-------------------------------------------------------|
//! | `/healthz`  | `ok` liveness probe; structured `ok`/`degraded` JSON  |
//! |             | (dead workers, recovery, firing alerts) on drivers    |
//! | `/metrics`  | Prometheus exposition + federated `worker="N"` series |
//! | `/spans`    | the current tracer ring as JSONL (`trace_to_jsonl`)   |
//! | `/progress` | registry JSON + per-worker `"workers"` section        |
//! | `/profile`  | cluster-wide folded-stack flamegraph text             |
//! | `/alerts`   | a fresh alert-rule evaluation as a JSON array         |
//!
//! The responder is hand-rolled on purpose: the crate's zero-dependency
//! rule (see the crate docs) covers the serving layer too, and the
//! request surface — `GET <path>`, no bodies, `Connection: close` — is
//! small enough that a real HTTP stack would be all dead weight.
//!
//! Connections are handled sequentially on the accept thread; every
//! response is a point-in-time snapshot, so a slow scraper can delay the
//! next scrape but never the workload (snapshotting briefly takes the
//! same locks exports take). [`ServeHandle::shutdown`] stops the thread
//! by flagging it and poking a wake-up connection through the listener.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Ceiling on how long one connection may hold the (sequential) accept
/// thread while *reading* its request. The per-read socket timeout below
/// resets on every received byte, so without this overall deadline a
/// client dribbling one byte every few hundred milliseconds could wedge
/// the server — and the CI obs-serve smoke job — indefinitely.
const REQUEST_DEADLINE: Duration = Duration::from_secs(2);

use crate::{export, federation, metrics, tracer};

/// The `/metrics` body: this process's own registry, plus — when a
/// distributed driver has absorbed worker reports — every federated
/// worker series with its `worker="N"` label appended after.
fn federated_metrics_body() -> String {
    let mut body = metrics::prometheus_snapshot();
    let federated = federation::global().prometheus_federated();
    body.push_str(&federated);
    body
}

/// The `/progress` body: the local registry JSON, with a `"workers"`
/// section spliced in when the federation store has worker entries.
fn federated_progress_body() -> String {
    let body = metrics::json_snapshot();
    let store = federation::global();
    if store.workers.is_empty() {
        return body;
    }
    let workers = store.progress_json_workers();
    drop(store);
    // json_snapshot always ends with `}`; splice before it.
    match body.strip_suffix('}') {
        Some(head) => format!("{head},\"workers\":{workers}}}"),
        None => body,
    }
}

/// A running monitoring server; shut it down explicitly with
/// [`shutdown`](ServeHandle::shutdown) (dropping the handle also stops
/// the server, so a panicking workload does not leak the thread).
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The actually-bound address (resolves port `0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The most recently bound server address in this process, if any. Lets
/// in-process callers (tests, the CLI) find a `--serve-addr 127.0.0.1:0`
/// server without parsing log output.
pub fn last_bound_addr() -> Option<SocketAddr> {
    *last_addr_cell().lock().unwrap_or_else(|p| p.into_inner())
}

fn last_addr_cell() -> &'static Mutex<Option<SocketAddr>> {
    static CELL: OnceLock<Mutex<Option<SocketAddr>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves the monitoring endpoints
/// from a background thread until the handle is shut down or dropped.
pub fn start(addr: &str) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    *last_addr_cell().lock().unwrap_or_else(|p| p.into_inner()) = Some(bound);
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("bpart-obs-serve".to_string())
        .spawn(move || accept_loop(listener, &thread_stop))?;
    Ok(ServeHandle {
        addr: bound,
        stop,
        thread: Some(thread),
    })
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        // A failed accept or a broken client must not kill the server.
        if let Ok(stream) = conn {
            let _ = handle_connection(stream);
        }
    }
}

/// Reads one `\n`-terminated line, enforcing the connection-wide
/// deadline between socket reads. `BufReader::read_line` alone is not
/// enough: it loops internally, and the per-read timeout resets on every
/// byte, so a slow-drip client could stretch a single line forever.
fn read_line_deadline(
    reader: &mut BufReader<TcpStream>,
    started: Instant,
    line: &mut String,
) -> io::Result<usize> {
    let mut total = 0usize;
    loop {
        if started.elapsed() > REQUEST_DEADLINE {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(total); // EOF
        }
        let (take, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        line.push_str(&String::from_utf8_lossy(&buf[..take]));
        reader.consume(take);
        total += take;
        if done {
            return Ok(total);
        }
    }
}

fn handle_connection(stream: TcpStream) -> io::Result<()> {
    let started = Instant::now();
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    read_line_deadline(&mut reader, started, &mut request_line)?;
    // Drain headers up to the blank line; nothing in them matters here.
    loop {
        let mut header = String::new();
        if read_line_deadline(&mut reader, started, &mut header)? == 0
            || header.trim_end().is_empty()
        {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/healthz" => {
                let body = federation::global().health_body();
                let content_type = if body.starts_with('{') {
                    "application/json"
                } else {
                    "text/plain; charset=utf-8"
                };
                ("200 OK", content_type, body)
            }
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                federated_metrics_body(),
            ),
            "/spans" => (
                "200 OK",
                "application/x-ndjson",
                export::trace_to_jsonl(&tracer::snapshot()),
            ),
            "/progress" => ("200 OK", "application/json", federated_progress_body()),
            "/profile" => (
                "200 OK",
                "text/plain; charset=utf-8",
                federation::global().cluster_profile_folded(),
            ),
            "/alerts" => {
                crate::alerts::evaluate_now();
                ("200 OK", "application/json", crate::alerts::alerts_json())
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!(
                    "no such endpoint {path:?}; try /healthz /metrics /spans /progress /profile /alerts\n"
                ),
            ),
        }
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// Minimal HTTP GET: returns (status line, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let (status, _, body) = get_full(addr, path);
        (status, body)
    }

    /// Like [`get`] but also extracts the `Content-Type` header, so
    /// tests can pin the media type a scraper would negotiate on.
    fn get_full(addr: SocketAddr, path: &str) -> (String, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        let status = head.lines().next().unwrap_or("").to_string();
        let content_type = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Type: "))
            .unwrap_or("")
            .to_string();
        (status, content_type, body.to_string())
    }

    #[test]
    fn serves_all_four_endpoints_and_404() {
        crate::set_trace_enabled(true);
        metrics::counter("t.serve.requests").add(3);

        let server = start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        assert_eq!(last_bound_addr(), Some(addr));

        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("t_serve_requests 3"), "{body}");

        // The tracer ring is shared with concurrently running tests (one
        // of which shrinks its capacity), so retry if our span is evicted
        // between recording and scraping.
        let mut span_served = false;
        for _ in 0..5 {
            {
                let _s = crate::span("t.serve.span");
            }
            let (status, body) = get(addr, "/spans");
            assert!(status.contains("200"), "{status}");
            if body.contains("\"name\":\"t.serve.span\"") {
                span_served = true;
                break;
            }
        }
        assert!(span_served, "/spans never contained the recorded span");

        let (status, body) = get(addr, "/progress");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"counters\""), "{body}");
        assert!(body.contains("\"t.serve.requests\":3"), "{body}");

        let (status, content_type, body) = get_full(addr, "/flamegraph");
        assert!(status.contains("404"), "{status}");
        assert_eq!(content_type, "text/plain; charset=utf-8");
        for endpoint in [
            "/healthz",
            "/metrics",
            "/spans",
            "/progress",
            "/profile",
            "/alerts",
        ] {
            assert!(
                body.contains(endpoint),
                "404 body missing {endpoint}: {body}"
            );
        }

        server.shutdown();
        // The port is released: a fresh bind to the same address works.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after shutdown");
    }

    #[test]
    fn federated_worker_series_appear_on_metrics_and_progress() {
        let server = start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        // Absorb-and-scrape in a retry loop: the federation store is
        // process-global and another test resets it concurrently.
        let mut seen = false;
        for _ in 0..5 {
            {
                let mut snap = federation::MetricsSnapshot::default();
                snap.counters.insert("t.serve.fed".to_string(), 11);
                federation::global()
                    .absorb_report(
                        7,
                        0,
                        1,
                        None,
                        &snap.to_bytes(),
                        &federation::encode_spans(&[]),
                    )
                    .expect("absorb");
            }
            let (status, metrics_body) = get(addr, "/metrics");
            assert!(status.contains("200"), "{status}");
            let (status, progress_body) = get(addr, "/progress");
            assert!(status.contains("200"), "{status}");
            if metrics_body.contains("t_serve_fed{worker=\"7\"} 11")
                && progress_body.contains("\"workers\"")
                && progress_body.contains("\"t.serve.fed\":11")
            {
                seen = true;
                break;
            }
        }
        assert!(seen, "federated series never appeared on the endpoints");
        server.shutdown();
    }

    #[test]
    fn profile_and_alerts_endpoints_serve_typed_bodies() {
        let server = start("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        // /alerts: a fresh evaluation rendered as a JSON array.
        let (status, content_type, body) = get_full(addr, "/alerts");
        assert!(status.contains("200"), "{status}");
        assert_eq!(content_type, "application/json");
        assert!(body.starts_with('['), "{body}");
        assert!(body.trim_end().ends_with(']'), "{body}");

        // /progress and /healthz carry explicit media types too.
        let (_, content_type, _) = get_full(addr, "/progress");
        assert_eq!(content_type, "application/json");
        let (_, content_type, body) = get_full(addr, "/healthz");
        if body.starts_with('{') {
            assert_eq!(content_type, "application/json");
        } else {
            assert_eq!(content_type, "text/plain; charset=utf-8");
        }

        // /profile: the cluster flame view, valid folded-stack text.
        // Absorb-and-scrape in a retry loop — the federation store is
        // process-global and another test resets it concurrently.
        let mut seen = false;
        for _ in 0..5 {
            federation::global()
                .absorb_profile(31, 0, 1, b"t.serve.profiled;leaf 4\n")
                .expect("absorb profile");
            let (status, content_type, body) = get_full(addr, "/profile");
            assert!(status.contains("200"), "{status}");
            assert_eq!(content_type, "text/plain; charset=utf-8");
            crate::profile::parse_folded(&body).expect("profile body parses as folded text");
            if body.contains("worker:31;t.serve.profiled;leaf 4") {
                seen = true;
                break;
            }
        }
        assert!(seen, "/profile never contained the federated stacks");
        server.shutdown();
    }

    #[test]
    fn rejects_non_get_methods() {
        let server = start("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("405"), "{response}");
        server.shutdown();
    }

    #[test]
    fn stalled_client_cannot_wedge_the_server() {
        let server = start("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        // One client connects and stalls mid-request-line, dribbling a
        // byte at a time — each byte resets the socket read timeout, so
        // only the overall request deadline can unwedge the server.
        let dribble = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for _ in 0..40 {
                if stream.write_all(b"G").is_err() {
                    break; // server gave up on us — exactly the point
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        // Give the staller time to become the in-flight connection.
        std::thread::sleep(Duration::from_millis(200));

        // A well-behaved client must still be served well before the
        // staller's 4s of dribbling would complete.
        let start_time = Instant::now();
        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");
        assert!(
            start_time.elapsed() < Duration::from_secs(4),
            "healthz took {:?} behind a stalled client",
            start_time.elapsed()
        );

        dribble.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn dropping_the_handle_stops_the_server() {
        let addr = {
            let server = start("127.0.0.1:0").expect("bind");
            server.addr()
        };
        assert!(TcpListener::bind(addr).is_ok(), "drop must stop the server");
    }
}
