//! Exporters: JSONL span traces and Prometheus-style metric snapshots.
//!
//! The workspace is zero-dependency, so JSON is emitted by hand. One span
//! per line:
//!
//! ```text
//! {"id":3,"parent":1,"name":"stream.buffer","thread":0,"start_ns":120,"dur_ns":4500,"attrs":{"vertices":"4096"}}
//! ```
//!
//! `parent` is `null` for roots. Attribute values are always JSON strings
//! (they come through `Display`), which keeps the reader trivial.

use std::io::{self, Write};
use std::path::Path;

use crate::metrics;
use crate::tracer::{self, SpanRecord};

/// Escapes a string for a JSON string literal (without the quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one span as a single JSON object line (no trailing newline).
pub fn span_to_json(span: &SpanRecord) -> String {
    let parent = span
        .parent
        .map_or_else(|| "null".to_string(), |p| p.to_string());
    let attrs: Vec<String> = span
        .attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!(
        "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"attrs\":{{{}}}}}",
        span.id,
        parent,
        escape_json(span.name),
        span.thread,
        span.start_ns,
        span.dur_ns,
        attrs.join(",")
    )
}

/// Renders the given spans as JSONL (one object per line, trailing
/// newline when non-empty).
pub fn trace_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for span in spans {
        out.push_str(&span_to_json(span));
        out.push('\n');
    }
    out
}

/// Writes the current tracer ring to `path` as JSONL. Returns the number
/// of spans written. If spans were evicted from the ring a warning is
/// printed to stderr (the file is still written).
pub fn write_trace_jsonl(path: &Path) -> io::Result<usize> {
    let spans = tracer::snapshot();
    let dropped = tracer::dropped_spans();
    if dropped > 0 {
        eprintln!("warning: trace ring overflowed; {dropped} oldest spans were dropped");
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(trace_to_jsonl(&spans).as_bytes())?;
    Ok(spans.len())
}

/// Writes the current metrics registry to `path` in the Prometheus text
/// exposition format.
pub fn write_metrics_text(path: &Path) -> io::Result<()> {
    std::fs::write(path, metrics::prometheus_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_json_shape_roots_and_children() {
        let root = SpanRecord {
            id: 1,
            parent: None,
            name: "t.export.root",
            thread: 0,
            start_ns: 10,
            dur_ns: 100,
            attrs: vec![("layer", "2".to_string())],
        };
        let child = SpanRecord {
            id: 2,
            parent: Some(1),
            name: "t.export.child",
            thread: 0,
            start_ns: 20,
            dur_ns: 50,
            attrs: vec![],
        };
        assert_eq!(
            span_to_json(&root),
            "{\"id\":1,\"parent\":null,\"name\":\"t.export.root\",\"thread\":0,\"start_ns\":10,\"dur_ns\":100,\"attrs\":{\"layer\":\"2\"}}"
        );
        assert_eq!(
            span_to_json(&child),
            "{\"id\":2,\"parent\":1,\"name\":\"t.export.child\",\"thread\":0,\"start_ns\":20,\"dur_ns\":50,\"attrs\":{}}"
        );
        let jsonl = trace_to_jsonl(&[root, child]);
        assert_eq!(jsonl.lines().count(), 2);
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
