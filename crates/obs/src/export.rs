//! Exporters: JSONL span traces and Prometheus-style metric snapshots.
//!
//! The workspace is zero-dependency, so JSON is emitted by hand. One span
//! per line:
//!
//! ```text
//! {"id":3,"parent":1,"name":"stream.buffer","thread":0,"start_ns":120,"dur_ns":4500,"attrs":{"vertices":"4096"}}
//! ```
//!
//! `parent` is `null` for roots. Attribute values are always JSON strings
//! (they come through `Display`), which keeps the reader trivial.

use std::io::{self, Write};
use std::path::Path;

use crate::metrics;
use crate::tracer::{self, SpanRecord};

/// Escapes a string for a JSON string literal (without the quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one span as a single JSON object line (no trailing newline).
pub fn span_to_json(span: &SpanRecord) -> String {
    let parent = span
        .parent
        .map_or_else(|| "null".to_string(), |p| p.to_string());
    let attrs: Vec<String> = span
        .attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!(
        "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"attrs\":{{{}}}}}",
        span.id,
        parent,
        escape_json(span.name),
        span.thread,
        span.start_ns,
        span.dur_ns,
        attrs.join(",")
    )
}

/// Renders the given spans as JSONL (one object per line, trailing
/// newline when non-empty).
pub fn trace_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for span in spans {
        out.push_str(&span_to_json(span));
        out.push('\n');
    }
    out
}

/// Creates the parent directory of an export target if it is missing.
/// Exports happen at the *end* of a run; failing a long job because
/// `results/` did not exist yet would throw the work away.
pub(crate) fn ensure_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    Ok(())
}

/// Writes the current tracer ring to `path` as JSONL, creating missing
/// parent directories. Returns the number of spans written. If spans
/// were evicted from the ring a warning is printed to stderr (the file
/// is still written).
pub fn write_trace_jsonl(path: &Path) -> io::Result<usize> {
    let spans = tracer::snapshot();
    let dropped = tracer::dropped_spans();
    if dropped > 0 {
        eprintln!("warning: trace ring overflowed; {dropped} oldest spans were dropped");
    }
    ensure_parent_dir(path)?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(trace_to_jsonl(&spans).as_bytes())?;
    Ok(spans.len())
}

/// Writes the current metrics registry to `path` in the Prometheus text
/// exposition format, creating missing parent directories.
pub fn write_metrics_text(path: &Path) -> io::Result<()> {
    ensure_parent_dir(path)?;
    std::fs::write(path, metrics::prometheus_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_json_shape_roots_and_children() {
        let root = SpanRecord {
            id: 1,
            parent: None,
            name: "t.export.root",
            thread: 0,
            start_ns: 10,
            dur_ns: 100,
            attrs: vec![("layer", "2".to_string())],
        };
        let child = SpanRecord {
            id: 2,
            parent: Some(1),
            name: "t.export.child",
            thread: 0,
            start_ns: 20,
            dur_ns: 50,
            attrs: vec![],
        };
        assert_eq!(
            span_to_json(&root),
            "{\"id\":1,\"parent\":null,\"name\":\"t.export.root\",\"thread\":0,\"start_ns\":10,\"dur_ns\":100,\"attrs\":{\"layer\":\"2\"}}"
        );
        assert_eq!(
            span_to_json(&child),
            "{\"id\":2,\"parent\":1,\"name\":\"t.export.child\",\"thread\":0,\"start_ns\":20,\"dur_ns\":50,\"attrs\":{}}"
        );
        let jsonl = trace_to_jsonl(&[root, child]);
        assert_eq!(jsonl.lines().count(), 2);
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn exports_create_missing_parent_directories() {
        let dir = std::env::temp_dir().join(format!("bpart_obs_export_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Two levels of nesting that do not exist yet.
        let trace_path = dir.join("nested/deeper/trace.jsonl");
        let metrics_path = dir.join("nested/metrics.prom");

        crate::set_trace_enabled(true);
        write_metrics_text(&metrics_path).expect("metrics export must create parents");

        // The ring is shared with concurrently running tests (one of which
        // shrinks its capacity), so retry if our span gets evicted between
        // recording and writing.
        let mut found = false;
        for _ in 0..5 {
            {
                let _s = crate::span("t.export.nested");
            }
            write_trace_jsonl(&trace_path).expect("trace export must create parents");
            // The nested trace round-trips through the report parser.
            let text = std::fs::read_to_string(&trace_path).unwrap();
            let parsed = crate::report::parse_trace_jsonl(&text).expect("parse");
            if parsed.iter().any(|s| s.name == "t.export.nested") {
                found = true;
                break;
            }
        }
        assert!(found, "exported trace never contained the recorded span");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
