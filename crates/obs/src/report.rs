//! Trace report: parse a JSONL span dump back and render a flame-style
//! span tree with per-phase totals.
//!
//! The parser is a minimal hand-rolled JSON object reader sized exactly
//! to what [`crate::export`] emits (flat objects, string/number/null
//! values, one nested `attrs` string map). It rejects malformed lines
//! with a line-numbered error, which is what makes it double as the CI
//! trace validator.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A span parsed back from JSONL (owned strings; attrs as a map).
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSpan {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub thread: u64,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub attrs: BTreeMap<String, String>,
}

/// Parses a whole JSONL trace. Empty lines are skipped; any malformed
/// line fails the whole parse with its 1-based line number.
pub fn parse_trace_jsonl(text: &str) -> Result<Vec<ParsedSpan>, String> {
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        spans.push(parse_span_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(spans)
}

fn parse_span_line(line: &str) -> Result<ParsedSpan, String> {
    let mut p = Parser::new(line);
    let mut id = None;
    let mut parent = None;
    let mut name = None;
    let mut thread = None;
    let mut start_ns = None;
    let mut dur_ns = None;
    let mut attrs = BTreeMap::new();
    p.expect('{')?;
    if !p.try_consume('}') {
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "id" => id = Some(p.u64()?),
                "parent" => parent = p.u64_or_null()?,
                "name" => name = Some(p.string()?),
                "thread" => thread = Some(p.u64()?),
                "start_ns" => start_ns = Some(p.u64()?),
                "dur_ns" => dur_ns = Some(p.u64()?),
                "attrs" => attrs = p.string_map()?,
                other => return Err(format!("unknown key {other:?}")),
            }
            if !p.try_consume(',') {
                break;
            }
        }
        p.expect('}')?;
    }
    p.end()?;
    Ok(ParsedSpan {
        id: id.ok_or("missing \"id\"")?,
        parent,
        name: name.ok_or("missing \"name\"")?,
        thread: thread.ok_or("missing \"thread\"")?,
        start_ns: start_ns.ok_or("missing \"start_ns\"")?,
        dur_ns: dur_ns.ok_or("missing \"dur_ns\"")?,
        attrs,
    })
}

/// Character-level cursor over one JSON line. Shared with
/// [`crate::history`], which parses its run records with the same
/// machinery (hence the `pub(crate)` surface).
pub(crate) struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(s: &'a str) -> Self {
        Parser { rest: s }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    pub(crate) fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.rest.strip_prefix(c) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(format!("expected {c:?} at {:?}", truncate(self.rest))),
        }
    }

    pub(crate) fn try_consume(&mut self, c: char) -> bool {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix(c) {
            self.rest = rest;
            true
        } else {
            false
        }
    }

    pub(crate) fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("trailing input at {:?}", truncate(self.rest)))
        }
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let digits: usize = self.rest.bytes().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return Err(format!("expected number at {:?}", truncate(self.rest)));
        }
        let (num, rest) = self.rest.split_at(digits);
        self.rest = rest;
        num.parse().map_err(|e| format!("bad number {num:?}: {e}"))
    }

    /// A JSON number as `f64`; a literal `null` parses as NaN (the
    /// history emitters write `null` for non-finite values, and NaN
    /// makes every regression comparison false, which is the safe read).
    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix("null") {
            self.rest = rest;
            return Ok(f64::NAN);
        }
        let len = self
            .rest
            .bytes()
            .take_while(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
            .count();
        if len == 0 {
            return Err(format!("expected number at {:?}", truncate(self.rest)));
        }
        let (num, rest) = self.rest.split_at(len);
        self.rest = rest;
        num.parse().map_err(|e| format!("bad number {num:?}: {e}"))
    }

    /// A `{"name": number, ...}` object (the history metrics map).
    pub(crate) fn f64_map(&mut self) -> Result<BTreeMap<String, f64>, String> {
        let mut map = BTreeMap::new();
        self.expect('{')?;
        if self.try_consume('}') {
            return Ok(map);
        }
        loop {
            let key = self.string()?;
            self.expect(':')?;
            let value = self.f64()?;
            map.insert(key, value);
            if !self.try_consume(',') {
                break;
            }
        }
        self.expect('}')?;
        Ok(map)
    }

    fn u64_or_null(&mut self) -> Result<Option<u64>, String> {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix("null") {
            self.rest = rest;
            Ok(None)
        } else {
            self.u64().map(Some)
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| "unterminated string".to_string())?;
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars.next().ok_or_else(|| "dangling escape".to_string())?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars
                                    .next()
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                code = code * 16
                                    + h.to_digit(16)
                                        .ok_or_else(|| format!("bad hex digit {h:?}"))?;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    pub(crate) fn string_map(&mut self) -> Result<BTreeMap<String, String>, String> {
        let mut map = BTreeMap::new();
        self.expect('{')?;
        if self.try_consume('}') {
            return Ok(map);
        }
        loop {
            let key = self.string()?;
            self.expect(':')?;
            let value = self.string()?;
            map.insert(key, value);
            if !self.try_consume(',') {
                break;
            }
        }
        self.expect('}')?;
        Ok(map)
    }
}

fn truncate(s: &str) -> &str {
    let end = s
        .char_indices()
        .take(24)
        .last()
        .map_or(0, |(i, c)| i + c.len_utf8());
    &s[..end]
}

/// One node of the aggregated span tree: all spans with the same name
/// under the same (aggregated) parent are folded together.
#[derive(Debug)]
pub struct TreeNode {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub children: Vec<TreeNode>,
}

/// Aggregates parsed spans into a forest: children grouped under their
/// parent's node by name, recursively, sorted by total time descending.
pub fn build_tree(spans: &[ParsedSpan]) -> Vec<TreeNode> {
    let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children_of: BTreeMap<Option<u64>, Vec<&ParsedSpan>> = BTreeMap::new();
    for s in spans {
        // A span whose parent was evicted from the ring becomes a root
        // rather than vanishing from the report.
        let parent = s.parent.filter(|p| known.contains(p));
        children_of.entry(parent).or_default().push(s);
    }
    build_level(None, &children_of)
}

fn build_level(
    parent: Option<u64>,
    children_of: &BTreeMap<Option<u64>, Vec<&ParsedSpan>>,
) -> Vec<TreeNode> {
    let Some(spans) = children_of.get(&parent) else {
        return Vec::new();
    };
    // Group this level's spans by name, merging each span's own subtree.
    let mut by_name: BTreeMap<&str, TreeNode> = BTreeMap::new();
    for s in spans {
        let node = by_name.entry(s.name.as_str()).or_insert_with(|| TreeNode {
            name: s.name.clone(),
            count: 0,
            total_ns: 0,
            children: Vec::new(),
        });
        node.count += 1;
        node.total_ns += s.dur_ns;
        for child in build_level(Some(s.id), children_of) {
            merge_child(&mut node.children, child);
        }
    }
    let mut nodes: Vec<TreeNode> = by_name.into_values().collect();
    nodes.sort_by_key(|n| std::cmp::Reverse(n.total_ns));
    nodes
}

fn merge_child(children: &mut Vec<TreeNode>, incoming: TreeNode) {
    if let Some(existing) = children.iter_mut().find(|c| c.name == incoming.name) {
        existing.count += incoming.count;
        existing.total_ns += incoming.total_ns;
        for grandchild in incoming.children {
            merge_child(&mut existing.children, grandchild);
        }
    } else {
        children.push(incoming);
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the flame-style tree plus a flat per-phase totals table —
/// the output of `bpart report <trace.jsonl>`.
pub fn render_report(spans: &[ParsedSpan]) -> String {
    let mut out = String::new();
    if spans.is_empty() {
        out.push_str("trace is empty (was tracing enabled via --trace-out?)\n");
        return out;
    }
    let tree = build_tree(spans);
    let total_ns: u64 = tree.iter().map(|n| n.total_ns).sum();
    let _ = writeln!(
        out,
        "span tree ({} spans, {} roots)",
        spans.len(),
        tree.len()
    );
    for (i, node) in tree.iter().enumerate() {
        render_node(&mut out, node, "", i + 1 == tree.len(), total_ns);
    }

    // Flat totals per span name, across all tree positions. Durations
    // also land in log-spaced `le` buckets so the p50/p99 columns come
    // from the same quantile estimator as the alert rules and the
    // federation RTT series (`metrics::quantile_from_buckets`).
    let mut flat: BTreeMap<&str, (u64, u64, Vec<u64>)> = BTreeMap::new();
    for s in spans {
        let e = flat
            .entry(s.name.as_str())
            .or_insert_with(|| (0, 0, vec![0u64; DUR_BOUNDS_NS.len() + 1]));
        e.0 += 1;
        e.1 += s.dur_ns;
        let idx = DUR_BOUNDS_NS
            .iter()
            .position(|&b| s.dur_ns as f64 <= b)
            .unwrap_or(DUR_BOUNDS_NS.len());
        e.2[idx] += 1;
    }
    let mut rows: Vec<(&str, u64, u64, Vec<u64>)> = flat
        .into_iter()
        .map(|(n, (c, t, b))| (n, c, t, b))
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.2));
    let name_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(5).max(5);
    let _ = writeln!(out, "\nper-phase totals");
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
        "phase", "count", "total", "mean", "p50", "p99"
    );
    for (name, count, ns, buckets) in rows {
        let quant = |q: f64| {
            crate::metrics::quantile_from_buckets(DUR_BOUNDS_NS, &buckets, q)
                .map_or_else(|| "-".to_string(), |v| fmt_ns(v as u64))
        };
        let _ = writeln!(
            out,
            "{name:<name_w$}  {count:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
            fmt_ns(ns),
            fmt_ns(ns / count.max(1)),
            quant(0.5),
            quant(0.99),
        );
    }
    out
}

/// Log-spaced duration bucket bounds (ns) for the per-phase quantile
/// columns: a 1–2.5–5 series per decade from 1µs to 10s.
const DUR_BOUNDS_NS: &[f64] = &[
    1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8,
    2.5e8, 5e8, 1e9, 2.5e9, 5e9, 1e10,
];

fn render_node(out: &mut String, node: &TreeNode, prefix: &str, last: bool, parent_ns: u64) {
    let branch = if last { "└─ " } else { "├─ " };
    let pct = if parent_ns > 0 {
        format!(" {:.1}%", node.total_ns as f64 * 100.0 / parent_ns as f64)
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{prefix}{branch}{} ×{} {}{pct}",
        node.name,
        node.count,
        fmt_ns(node.total_ns),
    );
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    for (i, child) in node.children.iter().enumerate() {
        render_node(
            out,
            child,
            &child_prefix,
            i + 1 == node.children.len(),
            node.total_ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::trace_to_jsonl;
    use crate::tracer::SpanRecord;

    fn record(id: u64, parent: Option<u64>, name: &'static str, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            thread: 0,
            start_ns: id * 10,
            dur_ns,
            attrs: vec![],
        }
    }

    #[test]
    fn parse_roundtrips_export_output() {
        let spans = vec![
            SpanRecord {
                attrs: vec![("layer", "1".to_string()), ("note", "a\"b".to_string())],
                ..record(1, None, "t.report.root", 100)
            },
            record(2, Some(1), "t.report.child", 40),
        ];
        let jsonl = trace_to_jsonl(&spans);
        let parsed = parse_trace_jsonl(&jsonl).expect("roundtrip parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "t.report.root");
        assert_eq!(
            parsed[0].attrs.get("note").map(String::as_str),
            Some("a\"b")
        );
        assert_eq!(parsed[1].parent, Some(1));
        assert_eq!(parsed[1].dur_ns, 40);
    }

    #[test]
    fn parse_rejects_malformed_lines_with_line_numbers() {
        let good = trace_to_jsonl(&[record(1, None, "t.report.ok", 5)]);
        let bad = format!("{good}{{\"id\":oops}}\n");
        let err = parse_trace_jsonl(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "got: {err}");
        assert!(
            parse_trace_jsonl("{\"id\":1}").is_err(),
            "missing fields must fail"
        );
    }

    #[test]
    fn tree_aggregates_same_name_siblings() {
        let spans = vec![
            record(1, None, "a", 100),
            record(2, Some(1), "b", 30),
            record(3, Some(1), "b", 20),
            record(4, None, "a", 50),
            record(5, Some(4), "b", 10),
        ];
        let jsonl = trace_to_jsonl(&spans);
        let parsed = parse_trace_jsonl(&jsonl).unwrap();
        let tree = build_tree(&parsed);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "a");
        assert_eq!(tree[0].count, 2);
        assert_eq!(tree[0].total_ns, 150);
        assert_eq!(tree[0].children.len(), 1);
        assert_eq!(tree[0].children[0].count, 3);
        assert_eq!(tree[0].children[0].total_ns, 60);
    }

    #[test]
    fn orphaned_spans_surface_as_roots() {
        // Parent id 99 is not in the trace (evicted): span must still show.
        let spans = vec![record(1, Some(99), "t.report.orphan", 10)];
        let jsonl = trace_to_jsonl(&spans);
        let tree = build_tree(&parse_trace_jsonl(&jsonl).unwrap());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "t.report.orphan");
    }

    #[test]
    fn report_renders_tree_and_totals() {
        let spans = vec![
            record(1, None, "cluster.superstep", 2_000_000),
            record(2, Some(1), "cluster.exchange", 500_000),
        ];
        let jsonl = trace_to_jsonl(&spans);
        let parsed = parse_trace_jsonl(&jsonl).unwrap();
        let text = render_report(&parsed);
        assert!(text.contains("cluster.superstep ×1 2.00ms"));
        assert!(text.contains("cluster.exchange"));
        assert!(text.contains("25.0%"));
        assert!(text.contains("per-phase totals"));
        assert!(render_report(&[]).contains("trace is empty"));
    }
}
