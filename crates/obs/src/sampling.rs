//! Tail-based span sampling for the tracer ring.
//!
//! The 65k ring is plenty for a bench run but a multi-hour job closes
//! millions of spans, and plain FIFO eviction throws away exactly the
//! spans you want after an incident: the slow superstep three hours ago,
//! the replayed checkpoint, the one buffer that stalled. Tail-based
//! sampling makes the *admission* decision after the span closes, when
//! its duration (the "tail" signal) is known:
//!
//! * **slow spans always keep** — duration ≥ [`TailConfig::slow_factor`]
//!   × the per-name EMA is anomalous by definition;
//! * **flagged spans always keep** — fault/replay/stall sites call
//!   [`SpanGuard::keep`](crate::SpanGuard::keep) so incident context
//!   survives at full detail regardless of duration;
//! * **warmup always keeps** — the first [`TailConfig::warmup`] closes of
//!   each name are admitted unconditionally so the EMA has something to
//!   converge on (and short unit-test runs are unaffected);
//! * **fast repetitive spans downsample** — admitted at 1 in
//!   [`TailConfig::keep_one_in`] via a cheap process-global LCG.
//!
//! Off by default; the CLI opts in via `BPART_TAIL_SAMPLE=1` (see
//! DESIGN.md §16). Sampled-out spans are counted in both
//! [`sampled_out`] and the `trace.tail_sampled_out` metric so exports can
//! report the thinning instead of silently looking complete.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Tuning knobs for the tail-sampling admission policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TailConfig {
    /// Keep any span at least this many times slower than its name's
    /// exponential moving average duration.
    pub slow_factor: f64,
    /// Admission rate for fast repetitive spans (1 in N kept).
    pub keep_one_in: u32,
    /// Per-name unconditional admissions before downsampling starts.
    pub warmup: u64,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            slow_factor: 4.0,
            keep_one_in: 16,
            warmup: 64,
        }
    }
}

/// EMA smoothing factor: new = (1-α)·old + α·sample.
const EMA_ALPHA: f64 = 0.1;

struct NameStats {
    closes: u64,
    ema_ns: f64,
}

struct SamplingState {
    enabled: AtomicBool,
    kept: AtomicU64,
    sampled_out: AtomicU64,
    rng: AtomicU64,
    config: Mutex<TailConfig>,
    stats: Mutex<HashMap<&'static str, NameStats>>,
}

fn state() -> &'static SamplingState {
    static STATE: OnceLock<SamplingState> = OnceLock::new();
    STATE.get_or_init(|| SamplingState {
        enabled: AtomicBool::new(false),
        kept: AtomicU64::new(0),
        sampled_out: AtomicU64::new(0),
        rng: AtomicU64::new(0x3243_F6A8_885A_308D),
        config: Mutex::new(TailConfig::default()),
        stats: Mutex::new(HashMap::new()),
    })
}

/// Turns tail sampling on or off process-wide (off is the default — every
/// closed span is admitted to the ring, the pre-existing behaviour).
pub fn set_tail_sampling_enabled(enabled: bool) {
    state().enabled.store(enabled, Ordering::Relaxed);
}

/// Whether tail sampling is currently on.
pub fn tail_sampling_enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// Replaces the admission policy (also resets nothing else — per-name
/// EMAs persist so tests can tune mid-run).
pub fn set_tail_config(config: TailConfig) {
    *state().config.lock().unwrap_or_else(|p| p.into_inner()) = config;
}

/// Spans admitted to the ring while sampling was on.
pub fn kept() -> u64 {
    state().kept.load(Ordering::Relaxed)
}

/// Spans discarded by the admission policy while sampling was on.
pub fn sampled_out() -> u64 {
    state().sampled_out.load(Ordering::Relaxed)
}

/// Clears counters and per-name statistics (for tests and run restarts).
pub fn reset_tail_sampling() {
    let s = state();
    s.kept.store(0, Ordering::Relaxed);
    s.sampled_out.store(0, Ordering::Relaxed);
    s.stats.lock().unwrap_or_else(|p| p.into_inner()).clear();
}

fn lcg_next() -> u64 {
    // Numerical Recipes LCG: deterministic per process, racy updates are
    // fine (any interleaving still yields well-distributed draws).
    let s = &state().rng;
    let next = s
        .load(Ordering::Relaxed)
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    s.store(next, Ordering::Relaxed);
    next
}

fn tail_metrics() -> (
    &'static crate::metrics::Counter,
    &'static crate::metrics::Counter,
) {
    static CELL: OnceLock<(
        &'static crate::metrics::Counter,
        &'static crate::metrics::Counter,
    )> = OnceLock::new();
    *CELL.get_or_init(|| {
        (
            crate::metrics::counter("trace.tail_kept"),
            crate::metrics::counter("trace.tail_sampled_out"),
        )
    })
}

/// The pure admission policy: given the per-name state *before* this
/// close (`closes` so far, current `ema_ns`), the span's duration, the
/// explicit pin, and a uniform random draw, decide admission. Extracted
/// from the stateful path so tests exercise the policy without flipping
/// the process-global switch under concurrently-running tests.
fn admit_decision(
    config: &TailConfig,
    closes_before: u64,
    ema_ns: f64,
    dur_ns: u64,
    keep: bool,
    draw: u64,
) -> bool {
    keep || closes_before < config.warmup
        || dur_ns as f64 >= config.slow_factor * ema_ns
        || config.keep_one_in <= 1
        || draw % u64::from(config.keep_one_in) == 0
}

/// The admission decision, called by the tracer as a span closes (after
/// the open-stack bookkeeping, before the ring push). `keep` is the
/// explicit pin from [`SpanGuard::keep`](crate::SpanGuard::keep).
pub(crate) fn admit(name: &'static str, dur_ns: u64, keep: bool) -> bool {
    let s = state();
    if !s.enabled.load(Ordering::Relaxed) {
        return true;
    }
    let config = *s.config.lock().unwrap_or_else(|p| p.into_inner());
    let (closes_before, ema_before) = {
        let mut stats = s.stats.lock().unwrap_or_else(|p| p.into_inner());
        let entry = stats.entry(name).or_insert(NameStats {
            closes: 0,
            ema_ns: dur_ns as f64,
        });
        let before = (entry.closes, entry.ema_ns);
        entry.closes += 1;
        entry.ema_ns = (1.0 - EMA_ALPHA) * entry.ema_ns + EMA_ALPHA * dur_ns as f64;
        before
    };
    let admitted = admit_decision(&config, closes_before, ema_before, dur_ns, keep, lcg_next());
    let (kept_c, out_c) = tail_metrics();
    if admitted {
        s.kept.fetch_add(1, Ordering::Relaxed);
        kept_c.add(1);
    } else {
        s.sampled_out.fetch_add(1, Ordering::Relaxed);
        out_c.add(1);
    }
    admitted
}

#[cfg(test)]
mod tests {
    use super::*;

    // The end-to-end path (spans actually thinned out of the ring) lives
    // in `tests/tail_sampling.rs`: flipping the process-global switch
    // here would sample spans out from under the crate's other unit
    // tests. These tests exercise the pure policy.

    #[test]
    fn disabled_admits_everything() {
        // `admit` short-circuits before touching any policy state.
        assert!(!tail_sampling_enabled());
        for _ in 0..100 {
            assert!(admit("samp.off", 1, false));
        }
    }

    #[test]
    fn warmup_pin_and_slow_spans_always_admit() {
        let cfg = TailConfig {
            slow_factor: 4.0,
            keep_one_in: 1000,
            warmup: 8,
        };
        // Warmup closes are admitted regardless of the draw.
        for closes in 0..8 {
            assert!(admit_decision(&cfg, closes, 1000.0, 1000, false, 7));
        }
        // Past warmup, a fast span with a losing draw drops...
        assert!(!admit_decision(&cfg, 8, 1000.0, 1000, false, 7));
        // ...a winning draw keeps it (1 in keep_one_in)...
        assert!(admit_decision(&cfg, 8, 1000.0, 1000, false, 1000));
        // ...a 4x-slower-than-EMA span is always kept...
        assert!(admit_decision(&cfg, 8, 1000.0, 4000, false, 7));
        // ...and an explicit pin beats the dice.
        assert!(admit_decision(&cfg, 8, 1000.0, 1, true, 7));
    }

    #[test]
    fn keep_one_in_of_one_disables_downsampling() {
        let cfg = TailConfig {
            slow_factor: 100.0,
            keep_one_in: 1,
            warmup: 0,
        };
        for draw in 0..50 {
            assert!(admit_decision(&cfg, 1000, 1e9, 1, false, draw));
        }
    }

    #[test]
    fn ema_update_tracks_a_regime_change() {
        // Drive the stateful EMA math directly (it runs even when the
        // draw admits everything).
        let mut stats = NameStats {
            closes: 0,
            ema_ns: 100_000.0,
        };
        for _ in 0..100 {
            stats.closes += 1;
            stats.ema_ns = (1.0 - EMA_ALPHA) * stats.ema_ns + EMA_ALPHA * 1000.0;
        }
        assert!(
            (1000.0..1100.0).contains(&stats.ema_ns),
            "ema must converge onto the new regime: {}",
            stats.ema_ns
        );
        let cfg = TailConfig::default();
        assert!(admit_decision(
            &cfg,
            stats.closes,
            stats.ema_ns,
            10_000,
            false,
            7
        ));
    }
}
