//! Artifact validation: the checks behind the `obs_check` CI gate.
//!
//! [`check_trace`] parses a JSONL trace with the same parser `bpart
//! report` uses and rejects an *empty* trace — an instrumented run that
//! recorded nothing means tracing was silently off, which is exactly the
//! failure a smoke test exists to catch. [`check_exposition`] validates
//! a Prometheus text exposition structurally: metric/sample names, label
//! termination, value syntax, and — the part a naive line check misses —
//! histogram series shape: `_bucket` counts must be cumulative
//! (non-decreasing in `le` order), the `le` bounds strictly ascending
//! and finishing with `+Inf`, and `_count` must equal the `+Inf` bucket.

use std::collections::BTreeMap;

use crate::report::{parse_trace_jsonl, ParsedSpan};

/// Parses a JSONL trace and rejects an empty one.
pub fn check_trace(text: &str) -> Result<Vec<ParsedSpan>, String> {
    let spans = parse_trace_jsonl(text)?;
    if spans.is_empty() {
        return Err("trace holds no spans (was tracing enabled?)".to_string());
    }
    Ok(spans)
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One `le` bound as ordered text ("+Inf" sorts above every number; the
/// exposition never emits NaN bounds because histogram bounds are
/// asserted finite at registration).
fn parse_le(raw: &str) -> Result<f64, String> {
    if raw == "+Inf" {
        return Ok(f64::INFINITY);
    }
    raw.parse::<f64>()
        .map_err(|e| format!("bad le bound {raw:?}: {e}"))
}

/// In-flight accumulation of one histogram's series while scanning.
#[derive(Default)]
struct HistogramSeries {
    /// `(le, cumulative_count)` in emission order.
    buckets: Vec<(f64, u64)>,
    count: Option<u64>,
}

/// Validates a Prometheus text exposition; returns the sample count.
pub fn check_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut histograms: BTreeMap<String, HistogramSeries> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
            let kind = it
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: bad metric name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown metric kind {kind:?}"));
            }
            if kind == "histogram" {
                histograms.entry(name.to_string()).or_default();
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (HELP, warnings) are fine
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample without a value: {line:?}"))?;
        let name = series.split('{').next().unwrap_or(series);
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad sample name {name:?}"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("line {lineno}: unterminated label set: {series:?}"));
        }
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {lineno}: bad sample value {value:?}"));
        }
        samples += 1;

        // Histogram series bookkeeping: the declared name plus a
        // `_bucket`/`_count` suffix.
        if let Some(base) = name.strip_suffix("_bucket") {
            if let Some(h) = histograms.get_mut(base) {
                let le_raw = series
                    .split_once("le=\"")
                    .and_then(|(_, rest)| rest.split('"').next())
                    .ok_or_else(|| format!("line {lineno}: histogram bucket without le label"))?;
                let le = parse_le(le_raw).map_err(|e| format!("line {lineno}: {e}"))?;
                let cumulative: u64 = value
                    .parse()
                    .map_err(|e| format!("line {lineno}: bucket count {value:?}: {e}"))?;
                h.buckets.push((le, cumulative));
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            if let Some(h) = histograms.get_mut(base) {
                h.count = Some(
                    value
                        .parse()
                        .map_err(|e| format!("line {lineno}: count {value:?}: {e}"))?,
                );
            }
        }
    }
    if samples == 0 {
        return Err("exposition holds no metric samples".into());
    }
    for (name, h) in &histograms {
        if h.buckets.is_empty() {
            return Err(format!("histogram {name}: no _bucket series"));
        }
        for pair in h.buckets.windows(2) {
            let ((le_a, c_a), (le_b, c_b)) = (pair[0], pair[1]);
            if le_b <= le_a {
                return Err(format!(
                    "histogram {name}: le bounds not ascending ({le_a} then {le_b})"
                ));
            }
            if c_b < c_a {
                return Err(format!(
                    "histogram {name}: bucket counts not cumulative ({c_a} then {c_b})"
                ));
            }
        }
        let (last_le, last_count) = *h.buckets.last().expect("non-empty");
        if last_le != f64::INFINITY {
            return Err(format!("histogram {name}: missing the +Inf bucket"));
        }
        match h.count {
            None => return Err(format!("histogram {name}: missing _count")),
            Some(count) if count != last_count => {
                return Err(format!(
                    "histogram {name}: _count {count} != +Inf bucket {last_count}"
                ));
            }
            Some(_) => {}
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_rejected() {
        let err = check_trace("").unwrap_err();
        assert!(err.contains("no spans"), "{err}");
        assert!(check_trace("\n\n").is_err());
        let one = "{\"id\":1,\"parent\":null,\"name\":\"x\",\"thread\":0,\"start_ns\":0,\"dur_ns\":1,\"attrs\":{}}\n";
        assert_eq!(check_trace(one).unwrap().len(), 1);
    }

    #[test]
    fn real_snapshot_output_passes() {
        crate::metrics::counter("t.validate.live").add(2);
        let h = crate::metrics::histogram("t.validate.live_hist", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(5.0);
        // Other tests observe *their* histograms concurrently, which can
        // transiently skew `_count` vs the `+Inf` bucket in a global
        // snapshot; validate only this test's (quiescent) series.
        let text: String = crate::metrics::prometheus_snapshot()
            .lines()
            .filter(|l| l.contains("t_validate_live"))
            .map(|l| format!("{l}\n"))
            .collect();
        check_exposition(&text).expect("real snapshot output must validate");
    }

    #[test]
    fn well_formed_histogram_passes() {
        let text = "\
# TYPE lat histogram
lat_bucket{le=\"1\"} 2
lat_bucket{le=\"2\"} 2
lat_bucket{le=\"+Inf\"} 5
lat_sum 9.5
lat_count 5
";
        assert_eq!(check_exposition(text).unwrap(), 5);
    }

    #[test]
    fn non_cumulative_buckets_are_rejected() {
        let text = "\
# TYPE lat histogram
lat_bucket{le=\"1\"} 5
lat_bucket{le=\"2\"} 3
lat_bucket{le=\"+Inf\"} 6
lat_count 6
";
        let err = check_exposition(text).unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
    }

    #[test]
    fn out_of_order_le_bounds_are_rejected() {
        let text = "\
# TYPE lat histogram
lat_bucket{le=\"2\"} 1
lat_bucket{le=\"1\"} 2
lat_bucket{le=\"+Inf\"} 3
lat_count 3
";
        let err = check_exposition(text).unwrap_err();
        assert!(err.contains("not ascending"), "{err}");
    }

    #[test]
    fn missing_inf_bucket_or_count_is_rejected() {
        let no_inf = "\
# TYPE lat histogram
lat_bucket{le=\"1\"} 1
lat_bucket{le=\"2\"} 2
lat_count 2
";
        assert!(check_exposition(no_inf).unwrap_err().contains("+Inf"));
        let no_count = "\
# TYPE lat histogram
lat_bucket{le=\"+Inf\"} 2
lat_sum 1
";
        assert!(check_exposition(no_count)
            .unwrap_err()
            .contains("missing _count"));
        let bad_count = "\
# TYPE lat histogram
lat_bucket{le=\"+Inf\"} 2
lat_count 7
";
        assert!(check_exposition(bad_count)
            .unwrap_err()
            .contains("_count 7 != +Inf bucket 2"));
    }

    #[test]
    fn structural_sample_errors_are_line_numbered() {
        assert!(check_exposition("").is_err(), "no samples");
        let err = check_exposition("9bad 1\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(
            check_exposition("x{le=\"1\" 2\n").is_err(),
            "unterminated labels"
        );
        assert!(check_exposition("x zebra\n").is_err(), "bad value");
        assert!(
            check_exposition("# TYPE x sparkline\nx 1\n").is_err(),
            "bad kind"
        );
        // Comment-only warning lines are allowed.
        assert!(check_exposition("# warning: something\nok 1\n").is_ok());
    }
}
