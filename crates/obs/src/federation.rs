//! Cluster-wide observability federation for the process backend.
//!
//! A `--backend process` run used to be a telemetry blind spot: every
//! worker's metrics registry and span ring lived (and died) inside the
//! worker process, so the driver's `/metrics` showed only its own
//! `dist.*` counters. This module is the merge point: workers serialise
//! point-in-time snapshots of their registry ([`MetricsSnapshot`]),
//! deltas of their span ring ([`encode_span_delta`]), and per-superstep
//! compute/exchange timings; the transport ferries them as opaque bytes
//! (the wire codec here is owned by obs, not by the dist proto); and the
//! driver absorbs them into a process-global [`FederationStore`] that the
//! live endpoints and exporters read.
//!
//! Design rules, each load-bearing:
//!
//! * **Merging is associative, commutative, and idempotent.** Every
//!   per-worker field merges by a deterministic total order — snapshots
//!   by `(epoch, seq)` (encoded-bytes tie-break), superstep samples by
//!   `(epoch, compute, comm)`, spans keyed by `(epoch, id)` — so
//!   re-delivered or reordered reports (the timer flush races the
//!   per-superstep piggyback) cannot corrupt the view. The proptests in
//!   `crates/obs/tests/proptest_federation.rs` hold these laws.
//! * **Worker identity is a label.** Federated series render with a
//!   `worker="3"` label; [`worker_label`] is injective (decimal digits
//!   only), so sanitisation can never alias two workers.
//! * **Clocks are aligned, not trusted.** Each report echoes the
//!   driver's `StepBegin` send timestamp plus the worker's receive/send
//!   timestamps (all on [`crate::tracer::now_ns`], the same clock spans
//!   are recorded on). The driver runs the NTP-style estimate
//!   `offset = ((t1−t0)+(t2−t3))/2`, keeps the minimum-RTT sample, and
//!   rebases worker span timelines by it at export time.
//! * **Death leaves a snapshot behind.** [`FederationStore::mark_dead`]
//!   flags the worker stale and pins its last snapshot; a fresh report
//!   (respawn) clears the flag. `/healthz` turns structured — `ok` /
//!   `degraded` with a dead-worker count and recovery flag — only when a
//!   distributed driver enables it; standalone runs keep the plain `ok`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::export::escape_json;
use crate::metrics::{self, MetricView};
use crate::tracer;

// ---------------------------------------------------------------------------
// Wire codec: tiny hand-rolled little-endian byte format (obs owns this;
// the dist proto carries the encoded payloads as opaque `Vec<u8>`).
// ---------------------------------------------------------------------------

const SNAPSHOT_VERSION: u8 = 1;
const SPANS_VERSION: u8 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { rest: bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.rest.len() < n {
            return Err(format!(
                "truncated federation payload: need {n} bytes, have {}",
                self.rest.len()
            ));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        // A corrupt length must not trigger a huge allocation.
        if len > self.rest.len() {
            return Err(format!(
                "truncated federation string: len {len} exceeds remaining {}",
                self.rest.len()
            ));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|e| format!("bad utf-8: {e}"))
    }

    fn end(&self) -> Result<(), String> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "trailing bytes in federation payload: {}",
                self.rest.len()
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics snapshots
// ---------------------------------------------------------------------------

/// A histogram's full state at snapshot time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSnapshot {
    /// Finite ascending upper bounds (the `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts, `bounds.len() + 1` entries.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

/// A point-in-time copy of one process's whole metrics registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// Snapshots the live registry of the calling process.
    pub fn capture() -> Self {
        let mut snap = MetricsSnapshot::default();
        metrics::visit_metrics(|name, view| match view {
            MetricView::Counter(v) => {
                snap.counters.insert(name.to_string(), v);
            }
            MetricView::Gauge(v) => {
                snap.gauges.insert(name.to_string(), v);
            }
            MetricView::Histogram {
                bounds,
                buckets,
                count,
                sum,
            } => {
                snap.histograms.insert(
                    name.to_string(),
                    HistSnapshot {
                        bounds,
                        buckets,
                        count,
                        sum,
                    },
                );
            }
        });
        snap
    }

    /// Serialises the snapshot for the `ObsReport` wire frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![SNAPSHOT_VERSION];
        put_u32(&mut out, self.counters.len() as u32);
        for (name, v) in &self.counters {
            put_str(&mut out, name);
            put_u64(&mut out, *v);
        }
        put_u32(&mut out, self.gauges.len() as u32);
        for (name, v) in &self.gauges {
            put_str(&mut out, name);
            put_f64(&mut out, *v);
        }
        put_u32(&mut out, self.histograms.len() as u32);
        for (name, h) in &self.histograms {
            put_str(&mut out, name);
            put_u32(&mut out, h.bounds.len() as u32);
            for b in &h.bounds {
                put_f64(&mut out, *b);
            }
            put_u32(&mut out, h.buckets.len() as u32);
            for b in &h.buckets {
                put_u64(&mut out, *b);
            }
            put_u64(&mut out, h.count);
            put_f64(&mut out, h.sum);
        }
        out
    }

    /// Parses a [`to_bytes`](Self::to_bytes) payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(bytes);
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(format!("unknown snapshot version {version}"));
        }
        let mut snap = MetricsSnapshot::default();
        for _ in 0..r.u32()? {
            let name = r.string()?;
            let v = r.u64()?;
            snap.counters.insert(name, v);
        }
        for _ in 0..r.u32()? {
            let name = r.string()?;
            let v = r.f64()?;
            snap.gauges.insert(name, v);
        }
        for _ in 0..r.u32()? {
            let name = r.string()?;
            let n_bounds = r.u32()? as usize;
            let mut bounds = Vec::with_capacity(n_bounds.min(1024));
            for _ in 0..n_bounds {
                bounds.push(r.f64()?);
            }
            let n_buckets = r.u32()? as usize;
            let mut buckets = Vec::with_capacity(n_buckets.min(1024));
            for _ in 0..n_buckets {
                buckets.push(r.u64()?);
            }
            let count = r.u64()?;
            let sum = r.f64()?;
            snap.histograms.insert(
                name,
                HistSnapshot {
                    bounds,
                    buckets,
                    count,
                    sum,
                },
            );
        }
        r.end()?;
        Ok(snap)
    }
}

// ---------------------------------------------------------------------------
// Span deltas
// ---------------------------------------------------------------------------

/// One span shipped across the wire (owned strings — the worker's
/// `&'static str` names don't survive process boundaries).
#[derive(Clone, Debug, PartialEq)]
pub struct WireSpan {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub thread: u64,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub attrs: Vec<(String, String)>,
}

/// Encodes the tracer-ring spans with `id > *watermark` (the delta since
/// the last report) and advances the watermark. Span ids are monotonic
/// within a process, so the watermark makes repeated flushes ship each
/// span exactly once.
pub fn encode_span_delta(watermark: &mut u64) -> Vec<u8> {
    let ring = tracer::snapshot();
    let fresh: Vec<WireSpan> = ring
        .iter()
        .filter(|s| s.id > *watermark)
        .map(|s| WireSpan {
            id: s.id,
            parent: s.parent,
            name: s.name.to_string(),
            thread: s.thread,
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
            attrs: s
                .attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        })
        .collect();
    if let Some(max_id) = fresh.iter().map(|s| s.id).max() {
        *watermark = (*watermark).max(max_id);
    }
    encode_spans(&fresh)
}

/// Serialises spans for the `ObsReport` wire frame.
pub fn encode_spans(spans: &[WireSpan]) -> Vec<u8> {
    let mut out = vec![SPANS_VERSION];
    put_u32(&mut out, spans.len() as u32);
    for s in spans {
        put_u64(&mut out, s.id);
        match s.parent {
            Some(p) => {
                out.push(1);
                put_u64(&mut out, p);
            }
            None => out.push(0),
        }
        put_str(&mut out, &s.name);
        put_u64(&mut out, s.thread);
        put_u64(&mut out, s.start_ns);
        put_u64(&mut out, s.dur_ns);
        put_u32(&mut out, s.attrs.len() as u32);
        for (k, v) in &s.attrs {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
    }
    out
}

/// Parses an [`encode_spans`] payload.
pub fn decode_spans(bytes: &[u8]) -> Result<Vec<WireSpan>, String> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != SPANS_VERSION {
        return Err(format!("unknown span-delta version {version}"));
    }
    let n = r.u32()? as usize;
    let mut spans = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let id = r.u64()?;
        let parent = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            other => return Err(format!("bad parent tag {other}")),
        };
        let name = r.string()?;
        let thread = r.u64()?;
        let start_ns = r.u64()?;
        let dur_ns = r.u64()?;
        let n_attrs = r.u32()? as usize;
        let mut attrs = Vec::with_capacity(n_attrs.min(64));
        for _ in 0..n_attrs {
            let k = r.string()?;
            let v = r.string()?;
            attrs.push((k, v));
        }
        spans.push(WireSpan {
            id,
            parent,
            name,
            thread,
            start_ns,
            dur_ns,
            attrs,
        });
    }
    r.end()?;
    Ok(spans)
}

// ---------------------------------------------------------------------------
// The federated store
// ---------------------------------------------------------------------------

/// One superstep's compute/exchange timing sample from one worker.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepSample {
    pub epoch: u32,
    pub compute_ns: u64,
    pub comm_ns: u64,
}

/// Everything the driver knows about one worker's observability.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerObs {
    /// Latest registry snapshot, keyed by the report that carried it.
    /// `(epoch, seq)` orders lexicographically, so a respawned worker
    /// (fresh seq, bumped epoch) still supersedes pre-death reports.
    pub snapshot: Option<((u32, u64), MetricsSnapshot)>,
    /// Per-superstep timing samples (replays overwrite via the
    /// deterministic `(epoch, compute, comm)` max).
    pub steps: BTreeMap<u64, StepSample>,
    /// Spans shipped so far, deduped by `(epoch, id)` — worker span ids
    /// restart on respawn, but respawn bumps the epoch.
    pub spans: BTreeMap<(u32, u64), WireSpan>,
    /// True between a detected death and the next fresh report.
    pub stale: bool,
    /// Observed deaths of this worker slot.
    pub deaths: u64,
    /// The snapshot pinned when the worker last died (kept even after a
    /// respawn starts reporting, for post-mortem reads).
    pub last_pre_death: Option<MetricsSnapshot>,
    /// Estimated `worker_clock − driver_clock` from the min-RTT sample.
    pub offset_ns: i64,
    /// The RTT of the best (kept) clock sample; `u64::MAX` = none yet.
    pub min_rtt_ns: u64,
    /// Latest folded-stack profile text from the worker's continuous
    /// profiler, keyed like the snapshot by the `(epoch, seq)` of the
    /// report that carried it (profiles are cumulative counts, so the
    /// newest report supersedes older ones wholesale).
    pub profile: Option<((u32, u64), Vec<u8>)>,
}

impl Default for WorkerObs {
    fn default() -> Self {
        WorkerObs {
            snapshot: None,
            steps: BTreeMap::new(),
            spans: BTreeMap::new(),
            stale: false,
            deaths: 0,
            last_pre_death: None,
            offset_ns: 0,
            // Sentinel: no clock sample yet, so any real RTT wins.
            min_rtt_ns: u64::MAX,
            profile: None,
        }
    }
}

impl WorkerObs {
    fn merge_from(&mut self, other: &WorkerObs) {
        // Snapshot: max (epoch, seq); encoded-bytes tie-break keeps the
        // pick deterministic even on adversarial equal-key inputs.
        self.snapshot = match (self.snapshot.take(), other.snapshot.clone()) {
            (None, b) => b,
            (a, None) => a,
            (Some((ka, sa)), Some((kb, sb))) => {
                if (kb, sb.to_bytes()) > (ka, sa.to_bytes()) {
                    Some((kb, sb))
                } else {
                    Some((ka, sa))
                }
            }
        };
        for (step, sample) in &other.steps {
            let slot = self.steps.entry(*step).or_insert(*sample);
            if (sample.epoch, sample.compute_ns, sample.comm_ns)
                > (slot.epoch, slot.compute_ns, slot.comm_ns)
            {
                *slot = *sample;
            }
        }
        for (key, span) in &other.spans {
            let slot = self.spans.entry(*key).or_insert_with(|| span.clone());
            if encode_spans(std::slice::from_ref(span)) > encode_spans(std::slice::from_ref(slot)) {
                *slot = span.clone();
            }
        }
        self.stale |= other.stale;
        self.deaths = self.deaths.max(other.deaths);
        self.last_pre_death = match (self.last_pre_death.take(), other.last_pre_death.clone()) {
            (None, b) => b,
            (a, None) => a,
            (Some(a), Some(b)) => {
                if b.to_bytes() > a.to_bytes() {
                    Some(b)
                } else {
                    Some(a)
                }
            }
        };
        // Clock: min-RTT wins; equal RTTs break to the lower offset.
        if (other.min_rtt_ns, other.offset_ns) < (self.min_rtt_ns, self.offset_ns) {
            self.min_rtt_ns = other.min_rtt_ns;
            self.offset_ns = other.offset_ns;
        }
        // Profile: same max-(epoch, seq) join as the snapshot, with the
        // raw-bytes tie-break keeping equal keys deterministic.
        self.profile = match (self.profile.take(), other.profile.clone()) {
            (None, b) => b,
            (a, None) => a,
            (Some((ka, pa)), Some((kb, pb))) => {
                if (kb, &pb) > (ka, &pa) {
                    Some((kb, pb))
                } else {
                    Some((ka, pa))
                }
            }
        };
    }
}

/// The driver's cluster-wide observability view.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FederationStore {
    pub workers: BTreeMap<u32, WorkerObs>,
    /// Expected worker count (gates [`step_timings`](Self::step_timings)).
    pub cluster_size: usize,
    /// True once a distributed driver owns this process's `/healthz`
    /// (standalone runs keep the plain `ok` body).
    pub health_enabled: bool,
    /// True while a recovery (rollback/replay) is in flight.
    pub recovering: bool,
    /// Driver span ids per `(epoch, superstep)`, so exported worker
    /// spans can parent under the driver's superstep spans.
    pub superstep_span_ids: BTreeMap<(u32, u64), u64>,
}

impl FederationStore {
    /// Merges `other` into `self`. Associative, commutative, and
    /// idempotent — see the module docs and the federation proptests.
    pub fn merge_from(&mut self, other: &FederationStore) {
        for (worker, obs) in &other.workers {
            self.workers.entry(*worker).or_default().merge_from(obs);
        }
        self.cluster_size = self.cluster_size.max(other.cluster_size);
        self.health_enabled |= other.health_enabled;
        self.recovering |= other.recovering;
        for (key, id) in &other.superstep_span_ids {
            let slot = self.superstep_span_ids.entry(*key).or_insert(*id);
            *slot = (*slot).max(*id);
        }
    }

    /// Pure two-store merge (the form the algebraic proptests exercise).
    pub fn merge(a: &FederationStore, b: &FederationStore) -> FederationStore {
        let mut out = a.clone();
        out.merge_from(b);
        out
    }

    /// Absorbs one decoded `ObsReport`: snapshot + span delta + optional
    /// superstep timing sample. Idempotent per `(worker, epoch, seq)`;
    /// a fresh (strictly newer) report clears the stale flag.
    #[allow(clippy::too_many_arguments)]
    pub fn absorb_report(
        &mut self,
        worker: u32,
        epoch: u32,
        seq: u64,
        step: Option<(u64, StepSample)>,
        metrics_bytes: &[u8],
        spans_bytes: &[u8],
    ) -> Result<(), String> {
        let snapshot = MetricsSnapshot::from_bytes(metrics_bytes)?;
        let spans = decode_spans(spans_bytes)?;
        let entry = self.workers.entry(worker).or_default();
        let key = (epoch, seq);
        // Same join as `merge_from`: max (epoch, seq), encoded-bytes
        // tie-break on an equal key, so replayed frames commute with
        // fresh ones. A strictly newer report also clears staleness.
        match &entry.snapshot {
            Some((k, _)) if key > *k => {
                entry.snapshot = Some((key, snapshot));
                entry.stale = false;
            }
            Some((k, old)) if key == *k && snapshot.to_bytes() > old.to_bytes() => {
                entry.snapshot = Some((key, snapshot));
            }
            Some(_) => {}
            None => {
                entry.snapshot = Some((key, snapshot));
                entry.stale = false;
            }
        }
        for span in spans {
            let slot = entry
                .spans
                .entry((epoch, span.id))
                .or_insert_with(|| span.clone());
            if encode_spans(std::slice::from_ref(&span)) > encode_spans(std::slice::from_ref(slot))
            {
                *slot = span;
            }
        }
        if let Some((superstep, sample)) = step {
            let slot = entry.steps.entry(superstep).or_insert(sample);
            if (sample.epoch, sample.compute_ns, sample.comm_ns)
                > (slot.epoch, slot.compute_ns, slot.comm_ns)
            {
                *slot = sample;
            }
        }
        Ok(())
    }

    /// Absorbs one worker's folded-stack profile blob (shipped alongside
    /// the ObsReport payloads). Same `(epoch, seq)` max-join as the
    /// metrics snapshot: replayed or reordered frames commute. Empty
    /// blobs are ignored (the worker's profiler was off or has no
    /// samples yet); malformed folded text is rejected so a corrupt
    /// frame cannot poison the cluster flame view.
    pub fn absorb_profile(
        &mut self,
        worker: u32,
        epoch: u32,
        seq: u64,
        folded: &[u8],
    ) -> Result<(), String> {
        if folded.is_empty() {
            return Ok(());
        }
        let text = std::str::from_utf8(folded).map_err(|e| format!("profile not UTF-8: {e}"))?;
        crate::profile::parse_folded(text).map_err(|e| format!("profile malformed: {e}"))?;
        let entry = self.workers.entry(worker).or_default();
        let key = (epoch, seq);
        match &entry.profile {
            Some((k, _)) if key > *k => entry.profile = Some((key, folded.to_vec())),
            Some((k, old)) if key == *k && folded > old.as_slice() => {
                entry.profile = Some((key, folded.to_vec()));
            }
            Some(_) => {}
            None => entry.profile = Some((key, folded.to_vec())),
        }
        Ok(())
    }

    /// Renders the cluster-wide flame view as folded-stack text: the
    /// driver's own profiler counts prefixed `driver;`, then each
    /// worker's federated profile prefixed `worker:N;` — one merged,
    /// flamegraph-compatible document (`--profile-out`, `/profile`, and
    /// the input to `bpart report --profile`). Lines sort by worker then
    /// count so the output is deterministic for a given state.
    pub fn cluster_profile_folded(&self) -> String {
        let mut out = String::new();
        for (stack, count) in crate::profile::folded_snapshot() {
            let _ = writeln!(out, "driver;{stack} {count}");
        }
        for (worker, obs) in &self.workers {
            let Some((_, blob)) = &obs.profile else {
                continue;
            };
            let Ok(text) = std::str::from_utf8(blob) else {
                continue;
            };
            let Ok(lines) = crate::profile::parse_folded(text) else {
                continue;
            };
            let label = worker_label(*worker);
            for (stack, count) in lines {
                let _ = writeln!(out, "worker:{label};{stack} {count}");
            }
        }
        out
    }

    /// Records one clock sample for `worker`; the minimum-RTT sample is
    /// kept (it bounds the offset error the tightest).
    pub fn record_clock_sample(&mut self, worker: u32, rtt_ns: u64, offset_ns: i64) {
        let entry = self.workers.entry(worker).or_default();
        if (rtt_ns, offset_ns) < (entry.min_rtt_ns, entry.offset_ns) {
            entry.min_rtt_ns = rtt_ns;
            entry.offset_ns = offset_ns;
        }
    }

    /// Marks `worker` dead: the stale flag raises and the last snapshot
    /// is pinned for post-mortem reads.
    pub fn mark_dead(&mut self, worker: u32) {
        let entry = self.workers.entry(worker).or_default();
        entry.stale = true;
        entry.deaths += 1;
        if let Some((_, snap)) = &entry.snapshot {
            entry.last_pre_death = Some(snap.clone());
        }
    }

    /// Notes the driver-side span id of an open superstep span, so
    /// exported worker spans can nest under it.
    pub fn note_superstep_span(&mut self, epoch: u32, superstep: u64, span_id: u64) {
        self.superstep_span_ids.insert((epoch, superstep), span_id);
    }

    /// Per-worker `(compute, comm)` seconds for `superstep`, in worker
    /// order — `Some` only when *every* expected worker has reported the
    /// step (partial rows would skew the Fig. 13 blame table).
    pub fn step_timings(&self, superstep: u64) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.cluster_size == 0 {
            return None;
        }
        let mut compute = Vec::with_capacity(self.cluster_size);
        let mut comm = Vec::with_capacity(self.cluster_size);
        for worker in 0..self.cluster_size as u32 {
            let sample = self.workers.get(&worker)?.steps.get(&superstep)?;
            compute.push(sample.compute_ns as f64 / 1e9);
            comm.push(sample.comm_ns as f64 / 1e9);
        }
        Some((compute, comm))
    }

    /// Currently-stale (dead, not yet respawned-and-reporting) workers.
    pub fn dead_workers(&self) -> usize {
        self.workers.values().filter(|w| w.stale).count()
    }

    /// Renders every federated worker series in the Prometheus text
    /// exposition, each qualified with a `worker="N"` label, plus
    /// per-worker federation meta-series (staleness, report seq, clock
    /// offset/RTT, death count). Appended to the driver's own
    /// `/metrics` body.
    pub fn prometheus_federated(&self) -> String {
        let mut out = String::new();
        for (worker, obs) in &self.workers {
            let label = worker_label(*worker);
            let _ = writeln!(
                out,
                "bpart_federation_stale{{worker=\"{label}\"}} {}",
                u64::from(obs.stale)
            );
            let _ = writeln!(
                out,
                "bpart_federation_deaths{{worker=\"{label}\"}} {}",
                obs.deaths
            );
            if obs.min_rtt_ns != u64::MAX {
                let _ = writeln!(
                    out,
                    "bpart_federation_clock_offset_ns{{worker=\"{label}\"}} {}",
                    obs.offset_ns
                );
                let _ = writeln!(
                    out,
                    "bpart_federation_rtt_ns{{worker=\"{label}\"}} {}",
                    obs.min_rtt_ns
                );
            }
            let Some(((epoch, seq), snap)) = &obs.snapshot else {
                continue;
            };
            let _ = writeln!(out, "bpart_federation_seq{{worker=\"{label}\"}} {seq}");
            let _ = writeln!(out, "bpart_federation_epoch{{worker=\"{label}\"}} {epoch}");
            for (name, v) in &snap.counters {
                let pname = metrics::sanitize_name(name);
                let _ = writeln!(out, "{pname}{{worker=\"{label}\"}} {v}");
            }
            for (name, v) in &snap.gauges {
                let pname = metrics::sanitize_name(name);
                let _ = writeln!(out, "{pname}{{worker=\"{label}\"}} {}", fmt_prom_f64(*v));
            }
            for (name, h) in &snap.histograms {
                let pname = metrics::sanitize_name(name);
                let mut cumulative = 0u64;
                for (i, c) in h.buckets.iter().enumerate() {
                    cumulative += c;
                    let le = h
                        .bounds
                        .get(i)
                        .copied()
                        .map_or_else(|| "+Inf".to_string(), fmt_prom_f64);
                    let _ = writeln!(
                        out,
                        "{pname}_bucket{{worker=\"{label}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(
                    out,
                    "{pname}_sum{{worker=\"{label}\"}} {}",
                    fmt_prom_f64(h.sum)
                );
                let _ = writeln!(out, "{pname}_count{{worker=\"{label}\"}} {}", h.count);
            }
        }
        // The driver's own RPC round-trip distribution, reduced to the
        // quantile series dashboards watch. Goes through the shared
        // bucket-math estimator in `metrics::quantile_from_buckets` —
        // the same one the alert engine's `rpc-rtt-p99` rule reads.
        metrics::visit_metrics(|name, view| {
            if name != "dist.rpc_rtt_ns" {
                return;
            }
            if let MetricView::Histogram {
                bounds, buckets, ..
            } = view
            {
                for (q, tag) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
                    if let Some(v) = metrics::quantile_from_buckets(&bounds, &buckets, q) {
                        let _ = writeln!(out, "bpart_federation_rtt_{tag} {}", fmt_prom_f64(v));
                    }
                }
            }
        });
        out
    }

    /// The per-worker section of the `/progress` JSON body: one object
    /// per worker with its report position, staleness, clock estimate,
    /// and the counters of its latest snapshot.
    pub fn progress_json_workers(&self) -> String {
        let mut parts = Vec::new();
        for (worker, obs) in &self.workers {
            let mut entry = String::new();
            let _ = write!(
                entry,
                "\"{}\":{{\"stale\":{},\"deaths\":{}",
                worker_label(*worker),
                obs.stale,
                obs.deaths
            );
            if let Some(((epoch, seq), snap)) = &obs.snapshot {
                let _ = write!(entry, ",\"epoch\":{epoch},\"seq\":{seq}");
                let counters: Vec<String> = snap
                    .counters
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{v}", escape_json(k)))
                    .collect();
                let _ = write!(entry, ",\"counters\":{{{}}}", counters.join(","));
            }
            if obs.min_rtt_ns != u64::MAX {
                let _ = write!(
                    entry,
                    ",\"offset_ns\":{},\"rtt_ns\":{}",
                    obs.offset_ns, obs.min_rtt_ns
                );
            }
            let _ = write!(entry, ",\"supersteps\":{}", obs.steps.len());
            entry.push('}');
            parts.push(entry);
        }
        format!("{{{}}}", parts.join(","))
    }

    /// The `/healthz` body. Plain `ok` until a distributed driver
    /// enables structured health; then JSON with `ok`/`degraded`, the
    /// dead-worker count, the recovery-in-progress flag, and any
    /// currently-firing alert rules (a fired rule alone is enough to
    /// turn the state degraded).
    pub fn health_body(&self) -> String {
        if !self.health_enabled {
            return "ok\n".to_string();
        }
        let dead = self.dead_workers();
        let firing = crate::alerts::firing();
        let status = if dead > 0 || self.recovering || !firing.is_empty() {
            "degraded"
        } else {
            "ok"
        };
        let alerts: Vec<String> = firing
            .iter()
            .map(|name| format!("\"{}\"", escape_json(name)))
            .collect();
        format!(
            "{{\"status\":\"{status}\",\"workers\":{},\"dead\":{dead},\"recovering\":{},\"alerts\":[{}]}}\n",
            self.cluster_size,
            self.recovering,
            alerts.join(",")
        )
    }

    /// One worker's federated span timeline as JSONL, rebased onto the
    /// driver's clock (subtracting the estimated offset, saturating at
    /// zero) and remapped into a per-worker id range disjoint from the
    /// driver's tracer ids. Root `worker.superstep` spans parent under
    /// the driver's matching `cluster.superstep` span when one was
    /// noted, so the merged report nests worker work under driver
    /// supersteps. Returns `None` when the worker shipped no spans.
    pub fn worker_trace_jsonl(&self, worker: u32) -> Option<String> {
        let obs = self.workers.get(&worker)?;
        if obs.spans.is_empty() {
            return None;
        }
        let base = worker_span_id_base(worker);
        let mut out = String::new();
        for ((epoch, _), span) in &obs.spans {
            let id = base + span.id;
            let parent = match span.parent {
                Some(p) => Some(base + p),
                None => self.parent_for_root(*epoch, span),
            };
            let start_ns = rebase_ns(span.start_ns, obs.offset_ns);
            let parent_str = parent.map_or_else(|| "null".to_string(), |p| p.to_string());
            let attrs: Vec<String> = span
                .attrs
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
                .collect();
            let _ = writeln!(
                out,
                "{{\"id\":{id},\"parent\":{parent_str},\"name\":\"{}\",\"thread\":{},\"start_ns\":{start_ns},\"dur_ns\":{},\"attrs\":{{{}}}}}",
                escape_json(&span.name),
                span.thread,
                span.dur_ns,
                attrs.join(","),
            );
        }
        Some(out)
    }

    fn parent_for_root(&self, epoch: u32, span: &WireSpan) -> Option<u64> {
        if span.name != "worker.superstep" {
            return None;
        }
        let superstep: u64 = span
            .attrs
            .iter()
            .find(|(k, _)| k == "superstep")
            .and_then(|(_, v)| v.parse().ok())?;
        self.superstep_span_ids.get(&(epoch, superstep)).copied()
    }
}

/// Rebases a worker-clock timestamp onto the driver clock by the
/// estimated offset (`worker − driver`), saturating at zero/`u64::MAX`.
pub fn rebase_ns(worker_ns: u64, offset_ns: i64) -> u64 {
    let rebased = i128::from(worker_ns) - i128::from(offset_ns);
    rebased.clamp(0, i128::from(u64::MAX)) as u64
}

/// The `worker="…"` label value for a worker id. Decimal digits only —
/// injective under any sanitisation, so two workers can never alias.
pub fn worker_label(worker: u32) -> String {
    worker.to_string()
}

/// Base of the exported span-id range for `worker`: far above any live
/// driver tracer id, and disjoint per worker.
fn worker_span_id_base(worker: u32) -> u64 {
    (u64::from(worker) + 1) << 40
}

fn fmt_prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// Process-global store + collection gate
// ---------------------------------------------------------------------------

static COLLECTION_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns federation collection on/off process-wide. The CLI enables it
/// when any obs export surface is active (`--trace-out`, `--serve-addr`,
/// `--metrics-out`); the driver propagates the flag to workers in
/// `StepBegin`, so a no-obs run ships no reports at all (the ≤3%
/// federation-overhead gate depends on this).
pub fn set_collection_enabled(enabled: bool) {
    COLLECTION_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether federation collection is on.
pub fn collection_enabled() -> bool {
    COLLECTION_ENABLED.load(Ordering::Relaxed)
}

fn store_cell() -> &'static Mutex<FederationStore> {
    static STORE: OnceLock<Mutex<FederationStore>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(FederationStore::default()))
}

/// Locks the process-global federation store (the one the serve
/// endpoints and exporters read).
pub fn global() -> MutexGuard<'static, FederationStore> {
    store_cell().lock().unwrap_or_else(|p| p.into_inner())
}

/// Resets the global store (tests and fresh runs).
pub fn reset() {
    *global() = FederationStore::default();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(v: u64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("dist.frames".to_string(), v);
        s.gauges.insert("cluster.progress".to_string(), v as f64);
        s.histograms.insert(
            "dist.frame_bytes".to_string(),
            HistSnapshot {
                bounds: vec![64.0, 4096.0],
                buckets: vec![v, 1, 0],
                count: v + 1,
                sum: 100.0 * v as f64,
            },
        );
        s
    }

    fn sample_span(id: u64, superstep: u64) -> WireSpan {
        WireSpan {
            id,
            parent: None,
            name: "worker.superstep".to_string(),
            thread: 0,
            start_ns: 1000 * id,
            dur_ns: 10,
            attrs: vec![("superstep".to_string(), superstep.to_string())],
        }
    }

    #[test]
    fn snapshot_codec_roundtrips() {
        let snap = sample_snapshot(7);
        let back = MetricsSnapshot::from_bytes(&snap.to_bytes()).expect("decode");
        assert_eq!(back, snap);
        // Empty snapshot roundtrips too.
        let empty = MetricsSnapshot::default();
        assert_eq!(
            MetricsSnapshot::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn snapshot_codec_rejects_corrupt_payloads() {
        let bytes = sample_snapshot(3).to_bytes();
        assert!(MetricsSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(MetricsSnapshot::from_bytes(&[]).is_err());
        assert!(MetricsSnapshot::from_bytes(&[99]).is_err(), "bad version");
        // Trailing garbage is rejected, not ignored.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(MetricsSnapshot::from_bytes(&extended).is_err());
    }

    #[test]
    fn span_codec_roundtrips_deltas() {
        let spans = vec![
            sample_span(4, 0),
            WireSpan {
                parent: Some(4),
                name: "worker.compute".to_string(),
                attrs: vec![],
                ..sample_span(5, 0)
            },
        ];
        let back = decode_spans(&encode_spans(&spans)).expect("decode");
        assert_eq!(back, spans);
        assert!(decode_spans(&[]).is_err());
        let enc = encode_spans(&spans);
        assert!(decode_spans(&enc[..enc.len() - 3]).is_err());
    }

    #[test]
    fn absorb_is_idempotent_per_worker_seq() {
        let mut store = FederationStore::default();
        let metrics = sample_snapshot(5).to_bytes();
        let spans = encode_spans(&[sample_span(1, 0)]);
        let step = Some((
            0,
            StepSample {
                epoch: 0,
                compute_ns: 100,
                comm_ns: 50,
            },
        ));
        store
            .absorb_report(2, 0, 1, step, &metrics, &spans)
            .unwrap();
        let once = store.clone();
        store
            .absorb_report(2, 0, 1, step, &metrics, &spans)
            .unwrap();
        assert_eq!(store, once, "re-delivery must be a no-op");
    }

    #[test]
    fn fresh_report_clears_stale_and_death_pins_snapshot() {
        let mut store = FederationStore {
            cluster_size: 3,
            health_enabled: true,
            ..Default::default()
        };
        let metrics = sample_snapshot(9).to_bytes();
        store
            .absorb_report(1, 0, 1, None, &metrics, &encode_spans(&[]))
            .unwrap();
        store.mark_dead(1);
        assert!(store.workers[&1].stale);
        assert_eq!(store.workers[&1].deaths, 1);
        assert_eq!(
            store.workers[&1].last_pre_death,
            Some(sample_snapshot(9)),
            "death must pin the last snapshot"
        );
        assert_eq!(store.dead_workers(), 1);
        assert!(store.health_body().contains("\"status\":\"degraded\""));

        // The respawned worker reports under a bumped epoch: stale clears.
        let metrics2 = sample_snapshot(2).to_bytes();
        store
            .absorb_report(1, 1, 1, None, &metrics2, &encode_spans(&[]))
            .unwrap();
        assert!(!store.workers[&1].stale);
        assert_eq!(store.dead_workers(), 0);
        // But the pre-death snapshot stays pinned.
        assert_eq!(store.workers[&1].last_pre_death, Some(sample_snapshot(9)));
    }

    #[test]
    fn stale_report_does_not_regress_the_snapshot() {
        let mut store = FederationStore::default();
        store
            .absorb_report(
                0,
                1,
                5,
                None,
                &sample_snapshot(50).to_bytes(),
                &encode_spans(&[]),
            )
            .unwrap();
        // An older (epoch, seq) report arrives late: ignored for the
        // snapshot, spans still deduped in.
        store
            .absorb_report(
                0,
                0,
                9,
                None,
                &sample_snapshot(1).to_bytes(),
                &encode_spans(&[]),
            )
            .unwrap();
        let ((epoch, seq), snap) = store.workers[&0].snapshot.clone().unwrap();
        assert_eq!((epoch, seq), (1, 5));
        assert_eq!(snap, sample_snapshot(50));
    }

    #[test]
    fn health_body_defaults_to_plain_ok() {
        // Satellite 1: standalone (non-distributed) processes keep the
        // exact liveness body the serve tests assert on.
        let store = FederationStore::default();
        assert_eq!(store.health_body(), "ok\n");
    }

    #[test]
    fn health_body_reports_structured_states() {
        let mut store = FederationStore {
            cluster_size: 4,
            health_enabled: true,
            ..Default::default()
        };
        assert_eq!(
            store.health_body(),
            "{\"status\":\"ok\",\"workers\":4,\"dead\":0,\"recovering\":false,\"alerts\":[]}\n"
        );
        store.recovering = true;
        assert_eq!(
            store.health_body(),
            "{\"status\":\"degraded\",\"workers\":4,\"dead\":0,\"recovering\":true,\"alerts\":[]}\n"
        );
        store.recovering = false;
        store.mark_dead(2);
        assert_eq!(
            store.health_body(),
            "{\"status\":\"degraded\",\"workers\":4,\"dead\":1,\"recovering\":false,\"alerts\":[]}\n"
        );
    }

    #[test]
    fn step_timings_require_every_worker() {
        let mut store = FederationStore {
            cluster_size: 2,
            ..Default::default()
        };
        let m = MetricsSnapshot::default().to_bytes();
        let sample = |c: u64| {
            Some((
                3u64,
                StepSample {
                    epoch: 0,
                    compute_ns: c,
                    comm_ns: c / 2,
                },
            ))
        };
        store
            .absorb_report(0, 0, 1, sample(2_000_000_000), &m, &encode_spans(&[]))
            .unwrap();
        assert_eq!(store.step_timings(3), None, "partial rows must not leak");
        store
            .absorb_report(1, 0, 1, sample(1_000_000_000), &m, &encode_spans(&[]))
            .unwrap();
        let (compute, comm) = store.step_timings(3).expect("complete row");
        assert_eq!(compute, vec![2.0, 1.0]);
        assert_eq!(comm, vec![1.0, 0.5]);
        assert_eq!(store.step_timings(4), None);
    }

    #[test]
    fn prometheus_federated_labels_every_series() {
        let mut store = FederationStore::default();
        store
            .absorb_report(
                3,
                0,
                2,
                None,
                &sample_snapshot(6).to_bytes(),
                &encode_spans(&[]),
            )
            .unwrap();
        store.record_clock_sample(3, 5000, -120);
        let text = store.prometheus_federated();
        assert!(text.contains("dist_frames{worker=\"3\"} 6"), "{text}");
        assert!(text.contains("cluster_progress{worker=\"3\"} 6"), "{text}");
        assert!(
            text.contains("dist_frame_bytes_bucket{worker=\"3\",le=\"64\"} 6"),
            "{text}"
        );
        assert!(
            text.contains("dist_frame_bytes_bucket{worker=\"3\",le=\"+Inf\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("bpart_federation_stale{worker=\"3\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("bpart_federation_seq{worker=\"3\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("bpart_federation_clock_offset_ns{worker=\"3\"} -120"),
            "{text}"
        );
        store.mark_dead(3);
        assert!(
            store
                .prometheus_federated()
                .contains("bpart_federation_stale{worker=\"3\"} 1"),
            "death must surface as staleness"
        );
    }

    #[test]
    fn profile_blobs_join_by_epoch_seq_and_reject_garbage() {
        let mut store = FederationStore::default();
        store.absorb_profile(1, 0, 1, b"a;b 3\nc 1\n").unwrap();
        // An older (epoch, seq) replay must not regress the blob.
        store.absorb_profile(1, 0, 0, b"stale 9\n").unwrap();
        assert_eq!(
            store.workers[&1].profile,
            Some(((0, 1), b"a;b 3\nc 1\n".to_vec()))
        );
        // A newer key replaces it.
        store.absorb_profile(1, 1, 0, b"newer 2\n").unwrap();
        assert_eq!(
            store.workers[&1].profile,
            Some(((1, 0), b"newer 2\n".to_vec()))
        );
        // Same key: byte-wise max wins, so duplicate delivery commutes.
        store.absorb_profile(1, 1, 0, b"aaaaa 1\n").unwrap();
        assert_eq!(
            store.workers[&1].profile,
            Some(((1, 0), b"newer 2\n".to_vec()))
        );
        // Empty blobs are a silent no-op (profiler off on that worker).
        store.absorb_profile(2, 0, 0, b"").unwrap();
        assert!(store.workers.get(&2).map_or(true, |w| w.profile.is_none()));
        // Malformed folded text and non-UTF-8 are rejected outright.
        assert!(store.absorb_profile(3, 0, 0, b"no-count-token").is_err());
        assert!(store
            .absorb_profile(3, 0, 0, &[0xff, 0xfe, 0x20, 0x31])
            .is_err());
    }

    #[test]
    fn cluster_profile_folded_prefixes_worker_sections() {
        let mut store = FederationStore::default();
        store.absorb_profile(1, 0, 1, b"a;b 3\nc 1\n").unwrap();
        store.absorb_profile(2, 0, 1, b"x 5\n").unwrap();
        let folded = store.cluster_profile_folded();
        assert!(folded.contains("worker:1;a;b 3\n"), "{folded}");
        assert!(folded.contains("worker:1;c 1\n"), "{folded}");
        assert!(folded.contains("worker:2;x 5\n"), "{folded}");
        // The merged document must itself be valid folded text.
        crate::profile::parse_folded(&folded).expect("cluster view parses");
    }

    #[test]
    fn prometheus_federated_emits_rtt_quantiles() {
        // The series reads the driver's live `dist.rpc_rtt_ns` histogram
        // through the shared quantile estimator.
        let h = metrics::histogram("dist.rpc_rtt_ns", &[1_000.0, 1_000_000.0]);
        h.observe(500.0);
        h.observe(600.0);
        let text = FederationStore::default().prometheus_federated();
        assert!(text.contains("bpart_federation_rtt_p50 "), "{text}");
        assert!(text.contains("bpart_federation_rtt_p90 "), "{text}");
        assert!(text.contains("bpart_federation_rtt_p99 "), "{text}");
    }

    #[test]
    fn progress_json_lists_workers() {
        let mut store = FederationStore::default();
        store
            .absorb_report(
                0,
                1,
                4,
                Some((
                    2,
                    StepSample {
                        epoch: 1,
                        compute_ns: 10,
                        comm_ns: 5,
                    },
                )),
                &sample_snapshot(3).to_bytes(),
                &encode_spans(&[]),
            )
            .unwrap();
        let json = store.progress_json_workers();
        assert!(json.contains("\"0\":{"), "{json}");
        assert!(json.contains("\"stale\":false"), "{json}");
        assert!(json.contains("\"epoch\":1,\"seq\":4"), "{json}");
        assert!(json.contains("\"dist.frames\":3"), "{json}");
        assert!(json.contains("\"supersteps\":1"), "{json}");
    }

    #[test]
    fn worker_trace_rebases_and_nests_under_driver_supersteps() {
        let mut store = FederationStore::default();
        store.note_superstep_span(0, 7, 42);
        let spans = vec![
            sample_span(1, 7),
            WireSpan {
                parent: Some(1),
                name: "worker.compute".to_string(),
                attrs: vec![],
                ..sample_span(2, 7)
            },
        ];
        store
            .absorb_report(
                0,
                0,
                1,
                None,
                &MetricsSnapshot::default().to_bytes(),
                &encode_spans(&spans),
            )
            .unwrap();
        store.record_clock_sample(0, 100, 600);
        let jsonl = store.worker_trace_jsonl(0).expect("trace");
        let base = 1u64 << 40;
        // Root worker.superstep parents under driver span 42; timestamps
        // are rebased by the −600ns offset (1000 → 400, saturating).
        assert!(
            jsonl.contains(&format!("\"id\":{},\"parent\":42", base + 1)),
            "{jsonl}"
        );
        assert!(
            jsonl.contains(&format!("\"id\":{},\"parent\":{}", base + 2, base + 1)),
            "{jsonl}"
        );
        assert!(jsonl.contains("\"start_ns\":400"), "{jsonl}");
        assert!(jsonl.contains("\"start_ns\":1400"), "{jsonl}");
        // And the output parses with the report reader.
        let parsed = crate::report::parse_trace_jsonl(&jsonl).expect("parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(store.worker_trace_jsonl(9), None);
    }

    #[test]
    fn rebase_saturates_instead_of_wrapping() {
        assert_eq!(rebase_ns(100, 600), 0);
        assert_eq!(rebase_ns(100, -600), 700);
        assert_eq!(rebase_ns(u64::MAX, -1), u64::MAX);
        assert_eq!(rebase_ns(0, i64::MIN), i64::MIN.unsigned_abs());
    }

    #[test]
    fn clock_samples_keep_the_min_rtt() {
        let mut store = FederationStore::default();
        store.record_clock_sample(0, 9000, 500);
        store.record_clock_sample(0, 3000, -200);
        store.record_clock_sample(0, 7000, 999);
        let w = &store.workers[&0];
        assert_eq!((w.min_rtt_ns, w.offset_ns), (3000, -200));
    }

    #[test]
    fn merge_unions_workers_and_keeps_newest() {
        let mut a = FederationStore::default();
        a.absorb_report(
            0,
            0,
            1,
            None,
            &sample_snapshot(1).to_bytes(),
            &encode_spans(&[]),
        )
        .unwrap();
        let mut b = FederationStore::default();
        b.absorb_report(
            0,
            0,
            3,
            None,
            &sample_snapshot(8).to_bytes(),
            &encode_spans(&[]),
        )
        .unwrap();
        b.absorb_report(
            1,
            0,
            1,
            None,
            &sample_snapshot(2).to_bytes(),
            &encode_spans(&[]),
        )
        .unwrap();
        let ab = FederationStore::merge(&a, &b);
        let ba = FederationStore::merge(&b, &a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.workers.len(), 2);
        assert_eq!(
            ab.workers[&0].snapshot.as_ref().unwrap().0,
            (0, 3),
            "newest (epoch, seq) wins"
        );
        assert_eq!(FederationStore::merge(&ab, &b), ab, "idempotent");
    }

    #[test]
    fn worker_labels_are_injective_digits() {
        for w in [0u32, 1, 7, 10, 4_294_967_295] {
            let label = worker_label(w);
            assert!(label.chars().all(|c| c.is_ascii_digit()));
            assert_eq!(label.parse::<u32>(), Ok(w));
        }
    }

    #[test]
    fn global_store_resets() {
        // Serialise against other tests that touch the global store.
        reset();
        global().cluster_size = 5;
        assert_eq!(global().cluster_size, 5);
        reset();
        assert_eq!(global().cluster_size, 0);
    }
}
