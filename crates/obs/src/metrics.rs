//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, always on.
//!
//! All updates are relaxed atomics — a counter bump is one
//! `fetch_add(Relaxed)` — so instrumentation stays enabled in release
//! builds. Registration (`counter("x")`) takes the registry lock once per
//! *name* lookup; hot call sites cache the returned `&'static` handle in a
//! `OnceLock` so steady-state recording never touches the lock:
//!
//! ```
//! use std::sync::OnceLock;
//! use bpart_obs::metrics::{counter, Counter};
//!
//! static BYTES: OnceLock<&'static Counter> = OnceLock::new();
//! BYTES.get_or_init(|| counter("doc.cached_bytes")).add(128);
//! ```
//!
//! Handles are leaked (`Box::leak`) into the process-lifetime registry;
//! the set of metric names is small and static, so this is a deliberate
//! one-time cost, not a leak in the growing sense.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (relaxed).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one (relaxed).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: `bounds` are ascending upper bounds, and an
/// implicit `+Inf` bucket catches overflow. A value equal to a bound lands
/// in that bound's bucket (`v <= bound`), matching Prometheus `le`
/// semantics.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last is `+Inf`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values as `f64` bits, updated via CAS loop.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending: {bounds:?}"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf bucket is implicit): {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        // First bound >= v. NaN would defeat partition_point (all
        // comparisons false ⇒ index 0), so route it to +Inf explicitly.
        let idx = if v.is_nan() {
            self.bounds.len()
        } else {
            self.bounds.partition_point(|b| *b < v)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, non-cumulative, including the final `+Inf`
    /// bucket (`bounds().len() + 1` entries).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimated `q`-quantile of the observations — see
    /// [`quantile_from_buckets`] for the semantics.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.bounds, &self.bucket_counts(), q)
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    // Poison-tolerant: the map only ever holds leaked `&'static` handles,
    // so a panicking registrant (e.g. a kind mismatch) leaves it valid.
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Returns (registering on first use) the counter named `name`.
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::default()))))
    {
        Metric::Counter(c) => c,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Returns (registering on first use) the gauge named `name`.
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::default()))))
    {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Returns (registering on first use) the histogram named `name` with the
/// given ascending finite upper `bounds` (an `+Inf` bucket is implicit).
///
/// Panics if `name` is already registered as a different kind, or with
/// different bounds.
pub fn histogram(name: &str, bounds: &[f64]) -> &'static Histogram {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new(bounds)))))
    {
        Metric::Histogram(h) => {
            assert_eq!(
                h.bounds(),
                bounds,
                "metric {name:?} already registered with different bounds"
            );
            h
        }
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// A point-in-time copy of one registered metric's value, as yielded by
/// [`visit_metrics`]. Histograms carry their full bucket layout so a
/// consumer (the federation snapshot) can reproduce the distribution,
/// not just count/sum.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricView {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// Finite ascending upper bounds (the `+Inf` bucket is implicit).
        bounds: Vec<f64>,
        /// Non-cumulative per-bucket counts, `bounds.len() + 1` entries.
        buckets: Vec<u64>,
        count: u64,
        sum: f64,
    },
}

/// Calls `f` once per registered metric, in name order, with a
/// point-in-time value snapshot. This is the enumeration surface the
/// federation layer serialises worker registries through; the registry
/// lock is held for the duration, so keep `f` cheap.
pub fn visit_metrics(mut f: impl FnMut(&str, MetricView)) {
    let reg = registry();
    for (name, metric) in reg.iter() {
        let view = match metric {
            Metric::Counter(c) => MetricView::Counter(c.get()),
            Metric::Gauge(g) => MetricView::Gauge(g.get()),
            Metric::Histogram(h) => MetricView::Histogram {
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
                count: h.count(),
                sum: h.sum(),
            },
        };
        f(name, view);
    }
}

/// Sanitises a dotted metric name for the Prometheus exposition format
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other illegal bytes become `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Formats an `f64` for JSON bodies: non-finite values become `null`
/// (JSON has no NaN/Inf). Shared by the `/progress` and `/alerts`
/// renderers.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Estimates the `q`-quantile (`0.0 ..= 1.0`) of a histogram from its
/// Prometheus-style buckets: `bounds` are the finite ascending upper
/// bounds, `buckets` the **non-cumulative** per-bucket counts with the
/// implicit `+Inf` bucket last (`bounds.len() + 1` entries — exactly what
/// [`Histogram::bucket_counts`] and [`MetricView::Histogram`] carry).
///
/// Uses Prometheus `histogram_quantile` semantics: linear interpolation
/// within the bucket containing the rank, a lower edge of 0 for the first
/// bucket, and the highest finite bound when the rank lands in `+Inf`
/// (an unbounded bucket cannot be interpolated). Returns `None` for an
/// empty histogram, a malformed shape, or `q` outside `[0, 1]`.
///
/// This is the one shared bucket-math implementation — `bpart report`
/// (span-duration percentiles), the alert engine's `Quantile` rules, and
/// the federation RTT series all call it rather than re-deriving.
pub fn quantile_from_buckets(bounds: &[f64], buckets: &[u64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) || buckets.len() != bounds.len() + 1 {
        return None;
    }
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return None;
    }
    // The observation rank the quantile falls on (1-based, clamped so
    // q=0 maps into the first occupied bucket).
    let rank = (q * count as f64).max(1.0);
    let mut cumulative = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cumulative += c;
        if (cumulative as f64) < rank {
            continue;
        }
        let Some(&upper) = bounds.get(i) else {
            // Rank lands in +Inf: the best defensible point estimate is
            // the largest finite bound (none ⇒ the histogram is all-+Inf
            // and carries no scale information).
            return bounds.last().copied();
        };
        let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
        let below = cumulative - c;
        let into = (rank - below as f64) / c as f64;
        return Some(lower + (upper - lower) * into);
    }
    None
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders every registered metric in the Prometheus text exposition
/// format (sorted by name; histograms as cumulative `_bucket{le=...}`
/// series plus `_sum`/`_count`).
///
/// Sanitisation can alias distinct registered names (`a.b` and `a_b`
/// both become `a_b`); that is a caller bug the snapshot must not hide,
/// so colliding names are flagged with a `# warning:` comment line (and
/// once on stderr) instead of silently merging into one series name.
pub fn prometheus_snapshot() -> String {
    let reg = registry();
    let mut sanitized_to_names: BTreeMap<String, Vec<&str>> = BTreeMap::new();
    for name in reg.keys() {
        sanitized_to_names
            .entry(sanitize_name(name))
            .or_default()
            .push(name);
    }
    let mut out = String::new();
    for (sanitized, names) in &sanitized_to_names {
        if names.len() > 1 {
            let list = names.join("\", \"");
            out.push_str(&format!(
                "# warning: sanitised name collision: \"{list}\" all map to {sanitized}\n"
            ));
            eprintln!(
                "warning: metric names \"{list}\" all sanitise to {sanitized:?}; \
                 their exposition series alias each other"
            );
        }
    }
    for (name, metric) in reg.iter() {
        let pname = sanitize_name(name);
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {pname} counter\n"));
                out.push_str(&format!("{pname} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {pname} gauge\n"));
                out.push_str(&format!("{pname} {}\n", fmt_f64(g.get())));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                let counts = h.bucket_counts();
                let mut cumulative = 0u64;
                for (i, c) in counts.iter().enumerate() {
                    cumulative += c;
                    let le = h
                        .bounds()
                        .get(i)
                        .copied()
                        .map_or_else(|| "+Inf".to_string(), fmt_f64);
                    out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                out.push_str(&format!("{pname}_sum {}\n", fmt_f64(h.sum())));
                out.push_str(&format!("{pname}_count {}\n", h.count()));
            }
        }
    }
    out
}

/// Renders the registry as one JSON object — the `/progress` endpoint's
/// body. Names are the *original* dotted names (no Prometheus
/// sanitisation), values grouped by kind; non-finite `f64`s become
/// `null` (JSON has no NaN/Inf):
///
/// ```text
/// {"counters":{"cluster.supersteps":41},
///  "gauges":{"cluster.progress_superstep":40},
///  "histograms":{"walk.steps_per_block":{"count":7,"sum":120}}}
/// ```
pub fn json_snapshot() -> String {
    use crate::export::escape_json;
    let reg = registry();
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, metric) in reg.iter() {
        let key = escape_json(name);
        match metric {
            Metric::Counter(c) => counters.push(format!("\"{key}\":{}", c.get())),
            Metric::Gauge(g) => gauges.push(format!("\"{key}\":{}", json_f64(g.get()))),
            Metric::Histogram(h) => histograms.push(format!(
                "\"{key}\":{{\"count\":{},\"sum\":{}}}",
                h.count(),
                json_f64(h.sum()),
            )),
        }
    }
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("t.metrics.counter");
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
        // Same name returns the same handle.
        assert_eq!(counter("t.metrics.counter").get(), 6);

        let g = gauge("t.metrics.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_le_inclusive() {
        // Satellite test: a value equal to a bound lands in that bound's
        // bucket; above the last bound goes to +Inf; NaN goes to +Inf.
        let h = histogram("t.metrics.hist_bounds", &[1.0, 10.0, 100.0]);
        h.observe(0.5); // <= 1.0
        h.observe(1.0); // == 1.0 → le="1" bucket
        h.observe(1.0000001); // → le="10"
        h.observe(10.0); // == 10.0 → le="10"
        h.observe(100.0); // == 100.0 → le="100"
        h.observe(1e9); // → +Inf
        h.observe(f64::NAN); // → +Inf, sum poisoned (deliberate)
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 2]);
        assert_eq!(h.count(), 7);
        assert!(h.sum().is_nan());
    }

    #[test]
    fn histogram_sum_is_exact_without_nan() {
        let h = histogram("t.metrics.hist_sum", &[4.0]);
        h.observe(1.0);
        h.observe(2.0);
        h.observe(8.0);
        assert_eq!(h.sum(), 11.0);
        assert_eq!(h.bucket_counts(), vec![2, 1]);
    }

    #[test]
    fn prometheus_snapshot_sanitizes_and_cumulates() {
        counter("t.promsnap.events").add(7);
        let h = histogram("t.promsnap.lat", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        let text = prometheus_snapshot();
        assert!(text.contains("# TYPE t_promsnap_events counter"));
        assert!(text.contains("t_promsnap_events 7"));
        // Cumulative buckets: 1, 2, 3.
        assert!(text.contains("t_promsnap_lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("t_promsnap_lat_bucket{le=\"2\"} 2"));
        assert!(text.contains("t_promsnap_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("t_promsnap_lat_count 3"));
        assert!(!text.contains("t.promsnap"), "dots must be sanitised");
    }

    #[test]
    fn sanitisation_collisions_are_warned_not_silent() {
        // `a.b` and `a_b` both sanitise to `a_b`: the snapshot must call
        // that out rather than silently emitting two series with one name.
        counter("t.collide.x").add(1);
        counter("t_collide.x").add(2);
        let text = prometheus_snapshot();
        assert_eq!(sanitize_name("t.collide.x"), sanitize_name("t_collide.x"));
        let warning = text
            .lines()
            .find(|l| l.starts_with("# warning: sanitised name collision"))
            .expect("collision warning line");
        assert!(warning.contains("t.collide.x"), "{warning}");
        assert!(warning.contains("t_collide.x"), "{warning}");
        assert!(warning.contains("t_collide_x"), "{warning}");
        // Non-colliding names get no warning about them.
        assert!(
            !text.contains("# warning: sanitised name collision: \"t.promsnap"),
            "{text}"
        );
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // 100 observations uniform over (0, 10]: bounds 5|10, 50 in each.
        let bounds = [5.0, 10.0];
        let buckets = [50, 50, 0];
        // p50 sits exactly at the first bucket's upper edge.
        assert_eq!(quantile_from_buckets(&bounds, &buckets, 0.5), Some(5.0));
        // p75 is halfway through the second bucket.
        assert_eq!(quantile_from_buckets(&bounds, &buckets, 0.75), Some(7.5));
        // p0 clamps to rank 1 inside the first bucket, not below it.
        let p0 = quantile_from_buckets(&bounds, &buckets, 0.0).unwrap();
        assert!(p0 > 0.0 && p0 <= 5.0, "{p0}");
        // p100 is the top of the last occupied bucket.
        assert_eq!(quantile_from_buckets(&bounds, &buckets, 1.0), Some(10.0));
    }

    #[test]
    fn quantile_handles_inf_bucket_and_bad_inputs() {
        let bounds = [10.0, 1000.0];
        // 99 fast, 1 slow: the p99.5 rank lands in the slow bucket and
        // interpolates about halfway through it.
        let p995 = quantile_from_buckets(&bounds, &[99, 1, 0], 0.995).unwrap();
        assert!((500.0..=510.0).contains(&p995), "{p995}");
        // Rank landing in +Inf degrades to the largest finite bound.
        assert_eq!(
            quantile_from_buckets(&bounds, &[0, 0, 5], 0.5),
            Some(1000.0)
        );
        // Empty histogram, bad q, and shape mismatch are all None.
        assert_eq!(quantile_from_buckets(&bounds, &[0, 0, 0], 0.5), None);
        assert_eq!(quantile_from_buckets(&bounds, &[1, 1, 1], 1.5), None);
        assert_eq!(quantile_from_buckets(&bounds, &[1, 1], 0.5), None);
        // No finite bounds at all: no scale information.
        assert_eq!(quantile_from_buckets(&[], &[7], 0.5), None);
    }

    #[test]
    fn histogram_quantile_reads_live_buckets() {
        let h = histogram("t.quant.hist", &[1.0, 2.0, 4.0]);
        for _ in 0..9 {
            h.observe(0.5);
        }
        h.observe(3.0);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 <= 1.0, "median in the fast bucket: {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 2.0, "tail in the slow bucket: {p99}");
    }

    #[test]
    fn sanitize_name_rules() {
        assert_eq!(sanitize_name("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize_name("ns:x_1"), "ns:x_1");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "");
    }

    #[test]
    fn json_snapshot_groups_by_kind_and_nulls_non_finite() {
        counter("t.jsonsnap.count").add(4);
        gauge("t.jsonsnap.gauge").set(1.5);
        gauge("t.jsonsnap.poisoned").set(f64::NAN);
        let h = histogram("t.jsonsnap.hist", &[1.0]);
        h.observe(0.5);
        h.observe(3.0);
        let text = json_snapshot();
        assert!(text.contains("\"t.jsonsnap.count\":4"), "{text}");
        assert!(text.contains("\"t.jsonsnap.gauge\":1.5"), "{text}");
        assert!(text.contains("\"t.jsonsnap.poisoned\":null"), "{text}");
        assert!(
            text.contains("\"t.jsonsnap.hist\":{\"count\":2,\"sum\":3.5}"),
            "{text}"
        );
        // Shape: one object with the three kind groups.
        assert!(text.starts_with("{\"counters\":{"), "{text}");
        assert!(text.ends_with("}}"), "{text}");
    }

    #[test]
    fn visit_metrics_yields_point_in_time_views() {
        counter("t.visit.count").add(9);
        gauge("t.visit.gauge").set(0.5);
        let h = histogram("t.visit.hist", &[2.0]);
        h.observe(1.0);
        h.observe(5.0);
        let mut seen = std::collections::BTreeMap::new();
        visit_metrics(|name, view| {
            if name.starts_with("t.visit.") {
                seen.insert(name.to_string(), view);
            }
        });
        assert_eq!(seen["t.visit.count"], MetricView::Counter(9));
        assert_eq!(seen["t.visit.gauge"], MetricView::Gauge(0.5));
        assert_eq!(
            seen["t.visit.hist"],
            MetricView::Histogram {
                bounds: vec![2.0],
                buckets: vec![1, 1],
                count: 2,
                sum: 6.0,
            }
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        counter("t.metrics.kind_clash");
        gauge("t.metrics.kind_clash");
    }

    #[test]
    fn concurrent_counter_updates_are_lossless() {
        let c = counter("t.metrics.concurrent");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
