//! Process resident-memory introspection and limits (linux/unix).
//!
//! The out-of-core pipeline's whole claim is a memory bound, so the
//! `stream_oom` bench and the `oom-gate` CI job need two primitives:
//!
//! * **measurement** — [`current_rss_bytes`] and [`peak_rss_bytes`] read
//!   `VmRSS` / `VmHWM` from `/proc/self/status`. `VmHWM` is the kernel's
//!   lifetime high-water mark for the process, which is exactly the number
//!   an OOM killer would have seen — no sampling thread required.
//! * **enforcement** — [`set_address_space_limit`] applies `RLIMIT_AS` via
//!   `setrlimit(2)`, so allocations beyond the ceiling *fail* instead of
//!   merely being frowned upon. An `O(m)` slip in the streaming path then
//!   aborts the run rather than quietly passing on a big CI host.
//!
//! Constrained kernels (containers, grsecurity, non-linux) can omit or
//! truncate `/proc/self/status` fields, so parsing goes through the
//! typed [`try_current_rss_bytes`] / [`try_peak_rss_bytes`] API with a
//! [`ProcStatusError`] naming exactly what went wrong — never a panic.
//! The `Option`-returning wrappers are kept for callers (the oom gate)
//! that treat any miss as "platform doesn't expose it".

use std::fmt;

/// Why a `/proc/self/status` field could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcStatusError {
    /// `/proc/self/status` itself could not be read (non-linux, masked
    /// procfs, …). Carries the OS error text.
    Unreadable(String),
    /// The file was read but the requested field is absent — constrained
    /// kernels omit accounting fields, and truncated reads lose the tail.
    MissingField(&'static str),
    /// The field was present but its value didn't parse as `<kB> kB`.
    Malformed { key: &'static str, line: String },
}

impl fmt::Display for ProcStatusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcStatusError::Unreadable(err) => {
                write!(f, "/proc/self/status unreadable: {err}")
            }
            ProcStatusError::MissingField(key) => {
                write!(f, "/proc/self/status has no {key} field")
            }
            ProcStatusError::Malformed { key, line } => {
                write!(f, "/proc/self/status {key} line malformed: {line:?}")
            }
        }
    }
}

impl std::error::Error for ProcStatusError {}

/// Parses a `VmXXX:   1234 kB` line out of status-file `text`. Pure so
/// fixture tests can exercise truncated and malformed files on any
/// platform.
fn parse_status_kb(text: &str, key: &'static str) -> Result<u64, ProcStatusError> {
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(key) else {
            continue;
        };
        // Guard against prefix collisions (`VmRSS` vs a hypothetical
        // `VmRSSX`): the key must be followed by the colon.
        let Some(rest) = rest.strip_prefix(':') else {
            continue;
        };
        let Some(token) = rest.split_whitespace().next() else {
            return Err(ProcStatusError::Malformed {
                key,
                line: line.to_string(),
            });
        };
        let kb: u64 = token.parse().map_err(|_| ProcStatusError::Malformed {
            key,
            line: line.to_string(),
        })?;
        return kb.checked_mul(1024).ok_or(ProcStatusError::Malformed {
            key,
            line: line.to_string(),
        });
    }
    Err(ProcStatusError::MissingField(key))
}

/// Reads and parses one field from the live `/proc/self/status`.
fn proc_status_bytes(key: &'static str) -> Result<u64, ProcStatusError> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status")
            .map_err(|e| ProcStatusError::Unreadable(e.to_string()))?;
        parse_status_kb(&status, key)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = key;
        Err(ProcStatusError::Unreadable(
            "no /proc/self/status on this platform".to_string(),
        ))
    }
}

/// Current resident set size in bytes (`VmRSS`), with a typed error when
/// the kernel hides or mangles the field.
pub fn try_current_rss_bytes() -> Result<u64, ProcStatusError> {
    proc_status_bytes("VmRSS")
}

/// Lifetime peak resident set size in bytes (`VmHWM`), with a typed
/// error when the kernel hides or mangles the field.
pub fn try_peak_rss_bytes() -> Result<u64, ProcStatusError> {
    proc_status_bytes("VmHWM")
}

/// Current resident set size in bytes (`VmRSS`), if the platform exposes
/// it.
pub fn current_rss_bytes() -> Option<u64> {
    try_current_rss_bytes().ok()
}

/// Lifetime peak resident set size in bytes (`VmHWM`), if the platform
/// exposes it. This is a high-water mark: it covers everything the
/// process has done so far, including phases before the caller started
/// caring — measure in a child process when isolating one phase.
pub fn peak_rss_bytes() -> Option<u64> {
    try_peak_rss_bytes().ok()
}

#[cfg(unix)]
mod ffi {
    use std::os::raw::c_int;

    /// `RLIMIT_AS` on linux (and the BSDs we care about): total virtual
    /// address space.
    pub const RLIMIT_AS: c_int = 9;

    #[repr(C)]
    pub struct Rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    extern "C" {
        pub fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }
}

/// Caps this process's virtual address space at `bytes` (`RLIMIT_AS`).
///
/// Irreversible for the life of the process (a process may lower its soft
/// limit but raising it back above the hard limit requires privilege), so
/// callers apply it in a dedicated child process — see the `stream_oom`
/// bench. Returns an error on platforms without `setrlimit` or when the
/// kernel refuses the value.
pub fn set_address_space_limit(bytes: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let lim = ffi::Rlimit {
            rlim_cur: bytes,
            rlim_max: bytes,
        };
        let rc = unsafe { ffi::setrlimit(ffi::RLIMIT_AS, &lim) };
        if rc == 0 {
            Ok(())
        } else {
            Err(std::io::Error::last_os_error())
        }
    }
    #[cfg(not(unix))]
    {
        let _ = bytes;
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "setrlimit is unavailable on this platform",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A healthy status file (abridged from a real kernel).
    const FULL_STATUS: &str = "\
Name:\tbpart
Umask:\t0022
State:\tR (running)
VmPeak:\t  123456 kB
VmSize:\t  120000 kB
VmHWM:\t   98304 kB
VmRSS:\t   65536 kB
Threads:\t4
";

    /// The truncated-status fixture: a constrained kernel (or a torn
    /// read) that lost everything from `VmHWM` on.
    const TRUNCATED_STATUS: &str = "\
Name:\tbpart
Umask:\t0022
State:\tR (running)
VmPeak:\t  123456 kB
";

    #[test]
    fn parses_fields_from_a_full_status_file() {
        assert_eq!(parse_status_kb(FULL_STATUS, "VmRSS"), Ok(65536 * 1024));
        assert_eq!(parse_status_kb(FULL_STATUS, "VmHWM"), Ok(98304 * 1024));
    }

    #[test]
    fn truncated_status_is_a_typed_missing_field_not_a_panic() {
        assert_eq!(
            parse_status_kb(TRUNCATED_STATUS, "VmHWM"),
            Err(ProcStatusError::MissingField("VmHWM"))
        );
        assert_eq!(
            parse_status_kb(TRUNCATED_STATUS, "VmRSS"),
            Err(ProcStatusError::MissingField("VmRSS"))
        );
        // And the error renders something a human can act on.
        let msg = ProcStatusError::MissingField("VmHWM").to_string();
        assert!(msg.contains("VmHWM"), "{msg}");
    }

    #[test]
    fn malformed_values_are_typed_errors() {
        let garbage = "VmRSS:\tnot-a-number kB\n";
        assert!(matches!(
            parse_status_kb(garbage, "VmRSS"),
            Err(ProcStatusError::Malformed { key: "VmRSS", .. })
        ));
        let empty_value = "VmRSS:\n";
        assert!(matches!(
            parse_status_kb(empty_value, "VmRSS"),
            Err(ProcStatusError::Malformed { key: "VmRSS", .. })
        ));
        // A kB count that would overflow the byte conversion.
        let huge = format!("VmRSS:\t{} kB\n", u64::MAX);
        assert!(matches!(
            parse_status_kb(&huge, "VmRSS"),
            Err(ProcStatusError::Malformed { key: "VmRSS", .. })
        ));
    }

    #[test]
    fn prefix_collisions_do_not_match() {
        // `VmRSSExtra` must not satisfy a `VmRSS` lookup.
        let tricky = "VmRSSExtra:\t10 kB\nVmRSS:\t20 kB\n";
        assert_eq!(parse_status_kb(tricky, "VmRSS"), Ok(20 * 1024));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_readings_are_sane() {
        let current = try_current_rss_bytes().expect("VmRSS should exist on linux");
        let peak = try_peak_rss_bytes().expect("VmHWM should exist on linux");
        // A running test binary holds at least a few pages, and the peak
        // can never undercut the present.
        assert!(current > 64 * 1024, "current {current}");
        assert!(peak >= current, "peak {peak} < current {current}");
        // The Option wrappers agree with the typed API modulo racing
        // allocations (both must at least be present).
        assert!(current_rss_bytes().is_some());
        assert!(peak_rss_bytes().is_some());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_tracks_a_big_allocation() {
        let before = peak_rss_bytes().unwrap();
        // Touch every page so the allocation actually becomes resident.
        let size = 64 * 1024 * 1024;
        let block = vec![1u8; size];
        assert_eq!(block.iter().map(|&b| b as u64).sum::<u64>(), size as u64);
        drop(block);
        let after = peak_rss_bytes().unwrap();
        assert!(
            after >= before + size as u64 / 2,
            "peak did not move: {before} -> {after}"
        );
    }

    // set_address_space_limit is deliberately untested in-process: the
    // limit cannot be raised again and would poison every later test in
    // this binary. The stream_oom bench exercises it end to end in a
    // child process.
}
