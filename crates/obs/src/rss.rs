//! Process resident-memory introspection and limits (linux/unix).
//!
//! The out-of-core pipeline's whole claim is a memory bound, so the
//! `stream_oom` bench and the `oom-gate` CI job need two primitives:
//!
//! * **measurement** — [`current_rss_bytes`] and [`peak_rss_bytes`] read
//!   `VmRSS` / `VmHWM` from `/proc/self/status`. `VmHWM` is the kernel's
//!   lifetime high-water mark for the process, which is exactly the number
//!   an OOM killer would have seen — no sampling thread required.
//! * **enforcement** — [`set_address_space_limit`] applies `RLIMIT_AS` via
//!   `setrlimit(2)`, so allocations beyond the ceiling *fail* instead of
//!   merely being frowned upon. An `O(m)` slip in the streaming path then
//!   aborts the run rather than quietly passing on a big CI host.
//!
//! Both degrade gracefully off linux: measurement returns `None` and the
//! gate falls back to trusting the pipeline's own accounting.

/// Reads a `VmXXX:   1234 kB` line from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn proc_status_kb(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.trim_start_matches(':').trim();
            let kb: u64 = rest.split_whitespace().next()?.parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Current resident set size in bytes (`VmRSS`), if the platform exposes
/// it.
pub fn current_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_kb("VmRSS")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Lifetime peak resident set size in bytes (`VmHWM`), if the platform
/// exposes it. This is a high-water mark: it covers everything the
/// process has done so far, including phases before the caller started
/// caring — measure in a child process when isolating one phase.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_kb("VmHWM")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(unix)]
mod ffi {
    use std::os::raw::c_int;

    /// `RLIMIT_AS` on linux (and the BSDs we care about): total virtual
    /// address space.
    pub const RLIMIT_AS: c_int = 9;

    #[repr(C)]
    pub struct Rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    extern "C" {
        pub fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }
}

/// Caps this process's virtual address space at `bytes` (`RLIMIT_AS`).
///
/// Irreversible for the life of the process (a process may lower its soft
/// limit but raising it back above the hard limit requires privilege), so
/// callers apply it in a dedicated child process — see the `stream_oom`
/// bench. Returns an error on platforms without `setrlimit` or when the
/// kernel refuses the value.
pub fn set_address_space_limit(bytes: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let lim = ffi::Rlimit {
            rlim_cur: bytes,
            rlim_max: bytes,
        };
        let rc = unsafe { ffi::setrlimit(ffi::RLIMIT_AS, &lim) };
        if rc == 0 {
            Ok(())
        } else {
            Err(std::io::Error::last_os_error())
        }
    }
    #[cfg(not(unix))]
    {
        let _ = bytes;
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "setrlimit is unavailable on this platform",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_readings_are_sane() {
        let current = current_rss_bytes().expect("VmRSS should exist on linux");
        let peak = peak_rss_bytes().expect("VmHWM should exist on linux");
        // A running test binary holds at least a few pages, and the peak
        // can never undercut the present.
        assert!(current > 64 * 1024, "current {current}");
        assert!(peak >= current, "peak {peak} < current {current}");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_tracks_a_big_allocation() {
        let before = peak_rss_bytes().unwrap();
        // Touch every page so the allocation actually becomes resident.
        let size = 64 * 1024 * 1024;
        let block = vec![1u8; size];
        assert_eq!(block.iter().map(|&b| b as u64).sum::<u64>(), size as u64);
        drop(block);
        let after = peak_rss_bytes().unwrap();
        assert!(
            after >= before + size as u64 / 2,
            "peak did not move: {before} -> {after}"
        );
    }

    // set_address_space_limit is deliberately untested in-process: the
    // limit cannot be raised again and would poison every later test in
    // this binary. The stream_oom bench exercises it end to end in a
    // child process.
}
