//! Declarative metric-rule alerting.
//!
//! A [`Rule`] watches the metrics registry and fires when its condition
//! holds: a [`RuleKind::Threshold`] on a counter/gauge, a
//! [`RuleKind::Ratio`] of two counters, a [`RuleKind::BurnRate`]
//! (per-second increase of a counter over a sliding window), or a
//! [`RuleKind::Quantile`] over a histogram's `le` buckets (via the shared
//! estimator in [`crate::metrics::quantile_from_buckets`]).
//!
//! Each rule runs a small hysteresis state machine ([`Phase`]):
//!
//! ```text
//!        cond for `for_ns`            cond false and
//!  Ok ────────────────────▶ Firing ── `cooldown_ns` since fired ──▶ Ok
//!   ▲ └─▶ Pending ─┘                                                │
//!   └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Once fired, a rule stays fired for at least its cooldown — it can
//! never flap back to Ok earlier (the `proptest_alerts` integration test
//! proves this over arbitrary condition sequences), and re-firing
//! requires the condition to hold again for the full `for` duration.
//!
//! The global engine ([`install_builtin_rules`], [`evaluate_now`],
//! [`start_evaluator`]) evaluates in the background while a job runs,
//! surfaces state on the `/alerts` endpoint and `bpart obs alerts`, and
//! folds firing rules into the structured `/healthz` degraded state.
//! Built-in rules cover the incidents the distributed backend actually
//! produces: worker death, stragglers, pipeline stalls, and
//! checkpoint-replay storms.

use crate::metrics::{self, MetricView};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Comparison operator for rule conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Gt,
    Ge,
    Lt,
    Le,
}

impl Op {
    fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Op::Gt => lhs > rhs,
            Op::Ge => lhs >= rhs,
            Op::Lt => lhs < rhs,
            Op::Le => lhs <= rhs,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Lt => "<",
            Op::Le => "<=",
        }
    }
}

/// What a rule computes from the registry each evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleKind {
    /// Current value of a counter or gauge compared to a constant.
    Threshold { metric: String, op: Op, value: f64 },
    /// Ratio of two counters/gauges (`num / den`); a zero or missing
    /// denominator makes the condition false (no divide-by-zero alarms).
    Ratio {
        num: String,
        den: String,
        op: Op,
        value: f64,
    },
    /// Per-second increase of a counter over a sliding window.
    BurnRate {
        metric: String,
        window: Duration,
        op: Op,
        value: f64,
    },
    /// Quantile of a histogram estimated from its `le` buckets.
    Quantile {
        metric: String,
        q: f64,
        op: Op,
        value: f64,
    },
}

/// One declarative alert rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Stable name (shown on `/alerts` and in `/healthz` degraded state).
    pub name: String,
    pub kind: RuleKind,
    /// The condition must hold this long before the rule fires.
    pub for_duration: Duration,
    /// Once fired, the rule stays fired at least this long (hysteresis).
    pub cooldown: Duration,
}

/// Hysteresis phase of one rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Ok,
    Pending,
    Firing,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Ok => "ok",
            Phase::Pending => "pending",
            Phase::Firing => "firing",
        }
    }
}

/// Per-rule evaluator state: the hysteresis machine plus the burn-rate
/// sample window.
#[derive(Clone, Debug)]
struct RuleState {
    phase: Phase,
    pending_since_ns: u64,
    fired_at_ns: u64,
    /// `(now_ns, counter_value)` samples for burn-rate windows.
    window: VecDeque<(u64, f64)>,
}

impl RuleState {
    fn new() -> Self {
        RuleState {
            phase: Phase::Ok,
            pending_since_ns: 0,
            fired_at_ns: 0,
            window: VecDeque::new(),
        }
    }

    /// Advances the hysteresis machine one observation. `now_ns` must be
    /// monotone non-decreasing across calls (the tracer clock is).
    fn step(&mut self, condition: bool, now_ns: u64, rule: &Rule) {
        let for_ns = rule.for_duration.as_nanos() as u64;
        let cooldown_ns = rule.cooldown.as_nanos() as u64;
        match self.phase {
            Phase::Ok => {
                if condition {
                    self.pending_since_ns = now_ns;
                    self.phase = Phase::Pending;
                }
            }
            Phase::Pending => {
                if !condition {
                    self.phase = Phase::Ok;
                }
            }
            Phase::Firing => {
                // Hysteresis: leaving Firing requires the condition to be
                // clear *and* the cooldown to have fully elapsed.
                if !condition && now_ns.saturating_sub(self.fired_at_ns) >= cooldown_ns {
                    self.phase = Phase::Ok;
                }
            }
        }
        if self.phase == Phase::Pending
            && condition
            && now_ns.saturating_sub(self.pending_since_ns) >= for_ns
        {
            self.phase = Phase::Firing;
            self.fired_at_ns = now_ns;
        }
    }
}

/// A point-in-time view of the metrics registry, resolvable by name.
pub struct MetricValues {
    map: HashMap<String, MetricView>,
}

impl MetricValues {
    /// Captures every registered metric.
    pub fn capture() -> Self {
        let mut map = HashMap::new();
        metrics::visit_metrics(|name, view| {
            map.insert(name.to_string(), view);
        });
        MetricValues { map }
    }

    /// Builds a view from explicit values (tests, offline evaluation).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, MetricView)>) -> Self {
        MetricValues {
            map: pairs.into_iter().collect(),
        }
    }

    /// Scalar value of a counter or gauge, `None` when absent or a
    /// histogram (histograms are only addressable via `Quantile`).
    fn scalar(&self, name: &str) -> Option<f64> {
        match self.map.get(name)? {
            MetricView::Counter(v) => Some(*v as f64),
            MetricView::Gauge(v) => Some(*v),
            MetricView::Histogram { .. } => None,
        }
    }

    fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        match self.map.get(name)? {
            MetricView::Histogram {
                bounds, buckets, ..
            } => metrics::quantile_from_buckets(bounds, buckets, q),
            _ => None,
        }
    }
}

/// Snapshot of one rule's evaluation, as rendered on `/alerts`.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertStatus {
    pub name: String,
    pub phase: Phase,
    /// Most recent computed value (`None` when inputs were absent).
    pub value: Option<f64>,
    /// Human-readable condition, e.g. `dist.worker_deaths > 0`.
    pub condition: String,
    /// Nanoseconds (tracer clock) the rule last entered `Firing`; 0 if
    /// it never fired.
    pub fired_at_ns: u64,
}

/// A deterministic rule evaluator over explicit metric snapshots and
/// timestamps. The global engine wraps one of these; tests drive their
/// own instance directly.
pub struct AlertEngine {
    rules: Vec<(Rule, RuleState)>,
}

impl Default for AlertEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl AlertEngine {
    pub fn new() -> Self {
        AlertEngine { rules: Vec::new() }
    }

    /// Registers a rule; replaces any existing rule with the same name
    /// (state resets — a redefined rule starts from Ok).
    pub fn add_rule(&mut self, rule: Rule) {
        if let Some(slot) = self.rules.iter_mut().find(|(r, _)| r.name == rule.name) {
            *slot = (rule, RuleState::new());
        } else {
            self.rules.push((rule, RuleState::new()));
        }
    }

    pub fn has_rule(&self, name: &str) -> bool {
        self.rules.iter().any(|(r, _)| r.name == name)
    }

    /// Computes a rule's current value against a snapshot; burn rates
    /// also push into the rule's sliding window.
    fn observe(
        kind: &RuleKind,
        state: &mut RuleState,
        values: &MetricValues,
        now_ns: u64,
    ) -> Option<f64> {
        match kind {
            RuleKind::Threshold { metric, .. } => values.scalar(metric),
            RuleKind::Ratio { num, den, .. } => {
                let d = values.scalar(den)?;
                if d == 0.0 {
                    return None;
                }
                Some(values.scalar(num)? / d)
            }
            RuleKind::BurnRate { metric, window, .. } => {
                let v = values.scalar(metric)?;
                state.window.push_back((now_ns, v));
                let horizon = now_ns.saturating_sub(window.as_nanos() as u64);
                // Keep one sample at-or-before the horizon so the rate
                // spans the whole window.
                while state.window.len() > 2 && state.window[1].0 <= horizon {
                    state.window.pop_front();
                }
                let (t0, v0) = *state.window.front()?;
                let dt = now_ns.saturating_sub(t0);
                if dt == 0 {
                    return None;
                }
                Some((v - v0) / (dt as f64 / 1e9))
            }
            RuleKind::Quantile { metric, q, .. } => values.quantile(metric, *q),
        }
    }

    fn condition_string(kind: &RuleKind) -> String {
        match kind {
            RuleKind::Threshold { metric, op, value } => {
                format!("{metric} {} {value}", op.symbol())
            }
            RuleKind::Ratio {
                num,
                den,
                op,
                value,
            } => format!("{num}/{den} {} {value}", op.symbol()),
            RuleKind::BurnRate {
                metric,
                window,
                op,
                value,
            } => format!(
                "rate({metric}[{}s]) {} {value}/s",
                window.as_secs(),
                op.symbol()
            ),
            RuleKind::Quantile {
                metric,
                q,
                op,
                value,
            } => format!("quantile({metric}, {q}) {} {value}", op.symbol()),
        }
    }

    /// Evaluates every rule against `values` at `now_ns` and returns the
    /// resulting statuses.
    pub fn step(&mut self, values: &MetricValues, now_ns: u64) -> Vec<AlertStatus> {
        let mut out = Vec::with_capacity(self.rules.len());
        for (rule, state) in &mut self.rules {
            let observed = Self::observe(&rule.kind, state, values, now_ns);
            let (op, threshold) = match &rule.kind {
                RuleKind::Threshold { op, value, .. }
                | RuleKind::Ratio { op, value, .. }
                | RuleKind::BurnRate { op, value, .. }
                | RuleKind::Quantile { op, value, .. } => (*op, *value),
            };
            let condition = observed.is_some_and(|v| op.eval(v, threshold));
            state.step(condition, now_ns, rule);
            out.push(AlertStatus {
                name: rule.name.clone(),
                phase: state.phase,
                value: observed,
                condition: Self::condition_string(&rule.kind),
                fired_at_ns: state.fired_at_ns,
            });
        }
        out
    }

    /// Names of rules currently in [`Phase::Firing`].
    pub fn firing(&self) -> Vec<String> {
        self.rules
            .iter()
            .filter(|(_, s)| s.phase == Phase::Firing)
            .map(|(r, _)| r.name.clone())
            .collect()
    }

    /// Current statuses without re-evaluating (phases as of the last
    /// [`step`](Self::step)).
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.rules
            .iter()
            .map(|(rule, state)| AlertStatus {
                name: rule.name.clone(),
                phase: state.phase,
                value: None,
                condition: Self::condition_string(&rule.kind),
                fired_at_ns: state.fired_at_ns,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The process-global engine.

struct GlobalAlerts {
    engine: Mutex<AlertEngine>,
    /// Statuses from the most recent evaluation (what `/alerts` renders).
    last: Mutex<Vec<AlertStatus>>,
    evaluator: Mutex<Option<EvaluatorHandle>>,
}

struct EvaluatorHandle {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<()>,
}

fn global() -> &'static GlobalAlerts {
    static STATE: OnceLock<GlobalAlerts> = OnceLock::new();
    STATE.get_or_init(|| GlobalAlerts {
        engine: Mutex::new(AlertEngine::new()),
        last: Mutex::new(Vec::new()),
        evaluator: Mutex::new(None),
    })
}

/// Registers (idempotently) the built-in SLO rules for the incidents the
/// distributed backend actually produces. Thresholds are deliberately
/// conservative: they flag real trouble, not noisy near-misses.
pub fn install_builtin_rules() {
    let mut engine = global().engine.lock().unwrap_or_else(|p| p.into_inner());
    let builtins = [
        // Any worker death is an incident worth surfacing immediately;
        // the long cooldown keeps one crash from flapping the state as
        // recovery bounces the counter's context.
        Rule {
            name: "worker-death".into(),
            kind: RuleKind::Threshold {
                metric: "dist.worker_deaths".into(),
                op: Op::Gt,
                value: 0.0,
            },
            for_duration: Duration::from_secs(0),
            cooldown: Duration::from_secs(60),
        },
        // Straggler factor (slowest/mean compute across workers, set by
        // the driver each superstep) — 3x is the paper's Fig. 13 regime
        // where one machine dominates the barrier wait.
        Rule {
            name: "straggler".into(),
            kind: RuleKind::Threshold {
                metric: "dist.straggler_factor".into(),
                op: Op::Ge,
                value: 3.0,
            },
            for_duration: Duration::from_millis(500),
            cooldown: Duration::from_secs(30),
        },
        // Out-of-core pipeline spending more time stalled than moving
        // batches means the stage budget is mis-sized.
        Rule {
            name: "pipeline-stall".into(),
            kind: RuleKind::Ratio {
                num: "pipeline.stalls".into(),
                den: "pipeline.batches".into(),
                op: Op::Gt,
                value: 2.0,
            },
            for_duration: Duration::from_millis(500),
            cooldown: Duration::from_secs(30),
        },
        // Replay storm: supersteps being replayed faster than one every
        // two seconds sustained means recovery is thrashing.
        Rule {
            name: "replay-storm".into(),
            kind: RuleKind::BurnRate {
                metric: "dist.replayed_supersteps".into(),
                window: Duration::from_secs(10),
                op: Op::Gt,
                value: 0.5,
            },
            for_duration: Duration::from_secs(1),
            cooldown: Duration::from_secs(60),
        },
        // Driver-worker RPC tail latency from the federation RTT series
        // (shared quantile estimator over the `le` buckets).
        Rule {
            name: "rpc-rtt-p99".into(),
            kind: RuleKind::Quantile {
                metric: "dist.rpc_rtt_ns".into(),
                q: 0.99,
                op: Op::Gt,
                value: 5e9,
            },
            for_duration: Duration::from_secs(1),
            cooldown: Duration::from_secs(60),
        },
    ];
    for rule in builtins {
        if !engine.has_rule(&rule.name) {
            engine.add_rule(rule);
        }
    }
}

/// Adds (or replaces) a rule on the global engine.
pub fn add_rule(rule: Rule) {
    global()
        .engine
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .add_rule(rule);
}

/// Evaluates the global engine against the live registry now; returns
/// the fresh statuses (also retained for [`alerts_json`]).
pub fn evaluate_now() -> Vec<AlertStatus> {
    let values = MetricValues::capture();
    let now = crate::tracer::now_ns();
    let statuses = global()
        .engine
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .step(&values, now);
    *global().last.lock().unwrap_or_else(|p| p.into_inner()) = statuses.clone();
    statuses
}

/// Names of currently-firing rules (from the most recent evaluation).
pub fn firing() -> Vec<String> {
    global()
        .engine
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .firing()
}

/// Renders the most recent evaluation as a JSON array (the `/alerts`
/// body). Call [`evaluate_now`] first for a fresh view.
pub fn alerts_json() -> String {
    let last = global().last.lock().unwrap_or_else(|p| p.into_inner());
    let mut out = String::from("[");
    for (i, s) in last.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{:?},\"phase\":\"{}\",\"condition\":{:?},\"value\":{},\"fired_at_ns\":{}}}",
            s.name,
            s.phase.as_str(),
            s.condition,
            s.value.map_or("null".to_string(), crate::metrics::json_f64),
            s.fired_at_ns
        ));
    }
    out.push_str("]\n");
    out
}

/// Starts the background evaluator at `interval` (idempotent: `false` if
/// already running).
pub fn start_evaluator(interval: Duration) -> bool {
    let mut slot = global().evaluator.lock().unwrap_or_else(|p| p.into_inner());
    if slot.is_some() {
        return false;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("bpart-alerts".into())
        .spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                evaluate_now();
                std::thread::sleep(interval);
            }
        })
        .expect("spawn alert evaluator");
    *slot = Some(EvaluatorHandle { stop, join });
    true
}

/// Stops the background evaluator (no-op when none is running).
pub fn stop_evaluator() {
    let handle = global()
        .evaluator
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .take();
    if let Some(handle) = handle {
        handle.stop.store(true, Ordering::Relaxed);
        let _ = handle.join.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold_rule(for_ms: u64, cooldown_ms: u64) -> Rule {
        Rule {
            name: "t".into(),
            kind: RuleKind::Threshold {
                metric: "x".into(),
                op: Op::Gt,
                value: 10.0,
            },
            for_duration: Duration::from_millis(for_ms),
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    fn values(v: f64) -> MetricValues {
        MetricValues::from_pairs([("x".to_string(), MetricView::Gauge(v))])
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn threshold_fires_after_for_duration_and_holds_through_cooldown() {
        let mut e = AlertEngine::new();
        e.add_rule(threshold_rule(10, 100));
        // Below threshold: Ok.
        assert_eq!(e.step(&values(5.0), 0)[0].phase, Phase::Ok);
        // Above: Pending until `for` elapses.
        assert_eq!(e.step(&values(20.0), MS)[0].phase, Phase::Pending);
        assert_eq!(e.step(&values(20.0), 5 * MS)[0].phase, Phase::Pending);
        assert_eq!(e.step(&values(20.0), 11 * MS)[0].phase, Phase::Firing);
        // Condition clears, but the cooldown pins the phase...
        assert_eq!(e.step(&values(5.0), 50 * MS)[0].phase, Phase::Firing);
        assert_eq!(e.step(&values(5.0), 110 * MS)[0].phase, Phase::Firing);
        // ...until 100ms after fired_at (11ms): clear from 111ms on.
        assert_eq!(e.step(&values(5.0), 112 * MS)[0].phase, Phase::Ok);
    }

    #[test]
    fn pending_resets_when_condition_clears_early() {
        let mut e = AlertEngine::new();
        e.add_rule(threshold_rule(10, 100));
        assert_eq!(e.step(&values(20.0), 0)[0].phase, Phase::Pending);
        assert_eq!(e.step(&values(5.0), 5 * MS)[0].phase, Phase::Ok);
        // A new excursion restarts the clock: 9ms in, still pending.
        assert_eq!(e.step(&values(20.0), 6 * MS)[0].phase, Phase::Pending);
        assert_eq!(e.step(&values(20.0), 15 * MS)[0].phase, Phase::Pending);
        assert_eq!(e.step(&values(20.0), 16 * MS)[0].phase, Phase::Firing);
    }

    #[test]
    fn zero_for_duration_fires_in_one_step() {
        let mut e = AlertEngine::new();
        e.add_rule(threshold_rule(0, 100));
        assert_eq!(e.step(&values(20.0), 7 * MS)[0].phase, Phase::Firing);
        assert_eq!(e.firing(), vec!["t".to_string()]);
    }

    #[test]
    fn missing_metric_is_not_a_condition() {
        let mut e = AlertEngine::new();
        e.add_rule(threshold_rule(0, 0));
        let empty = MetricValues::from_pairs([]);
        let s = &e.step(&empty, 0)[0];
        assert_eq!(s.phase, Phase::Ok);
        assert_eq!(s.value, None);
    }

    #[test]
    fn ratio_rule_ignores_zero_denominator() {
        let mut e = AlertEngine::new();
        e.add_rule(Rule {
            name: "r".into(),
            kind: RuleKind::Ratio {
                num: "a".into(),
                den: "b".into(),
                op: Op::Gt,
                value: 0.5,
            },
            for_duration: Duration::ZERO,
            cooldown: Duration::ZERO,
        });
        let zero_den = MetricValues::from_pairs([
            ("a".to_string(), MetricView::Counter(5)),
            ("b".to_string(), MetricView::Counter(0)),
        ]);
        assert_eq!(e.step(&zero_den, 0)[0].phase, Phase::Ok);
        let hot = MetricValues::from_pairs([
            ("a".to_string(), MetricView::Counter(5)),
            ("b".to_string(), MetricView::Counter(4)),
        ]);
        let s = &e.step(&hot, MS)[0];
        assert_eq!(s.phase, Phase::Firing);
        assert_eq!(s.value, Some(1.25));
    }

    #[test]
    fn burn_rate_measures_increase_over_the_window() {
        let mut e = AlertEngine::new();
        e.add_rule(Rule {
            name: "b".into(),
            kind: RuleKind::BurnRate {
                metric: "c".into(),
                window: Duration::from_secs(10),
                op: Op::Gt,
                value: 1.0,
            },
            for_duration: Duration::ZERO,
            cooldown: Duration::ZERO,
        });
        let at = |v: u64| MetricValues::from_pairs([("c".to_string(), MetricView::Counter(v))]);
        let sec = 1_000_000_000u64;
        // First sample: no rate yet.
        assert_eq!(e.step(&at(0), 0)[0].value, None);
        // +2 over 1s = 2/s > 1/s: fires.
        let s = &e.step(&at(2), sec)[0];
        assert_eq!(s.value, Some(2.0));
        assert_eq!(s.phase, Phase::Firing);
        // Flat counter: the rate decays and the alert clears (zero
        // cooldown, so the clear is immediate once the condition drops).
        let s = &e.step(&at(2), 2 * sec)[0];
        assert_eq!(s.value, Some(1.0)); // 2 over 2s, no longer > 1/s
        assert_eq!(s.phase, Phase::Ok);
        let s = &e.step(&at(2), 3 * sec)[0];
        assert!(s.value.unwrap() < 1.0);
        assert_eq!(s.phase, Phase::Ok);
    }

    #[test]
    fn quantile_rule_reads_histogram_buckets() {
        let mut e = AlertEngine::new();
        e.add_rule(Rule {
            name: "q".into(),
            kind: RuleKind::Quantile {
                metric: "h".into(),
                q: 0.99,
                op: Op::Gt,
                value: 100.0,
            },
            for_duration: Duration::ZERO,
            cooldown: Duration::ZERO,
        });
        // 90 fast observations (≤10), 10 slow (≤1000): p99 lands deep in
        // the slow bucket, over the 100 threshold.
        let v = MetricValues::from_pairs([(
            "h".to_string(),
            MetricView::Histogram {
                bounds: vec![10.0, 1000.0],
                buckets: vec![90, 10, 0],
                count: 100,
                sum: 0.0,
            },
        )]);
        let s = &e.step(&v, 0)[0];
        assert_eq!(s.phase, Phase::Firing);
        assert!(s.value.unwrap() > 100.0, "p99 {:?}", s.value);
    }

    #[test]
    fn builtin_rules_install_idempotently() {
        install_builtin_rules();
        install_builtin_rules();
        let engine = global().engine.lock().unwrap_or_else(|p| p.into_inner());
        for name in [
            "worker-death",
            "straggler",
            "pipeline-stall",
            "replay-storm",
            "rpc-rtt-p99",
        ] {
            assert!(engine.has_rule(name), "missing builtin {name}");
        }
        assert_eq!(
            engine
                .rules
                .iter()
                .filter(|(r, _)| r.name == "worker-death")
                .count(),
            1
        );
    }

    #[test]
    fn alerts_json_renders_the_last_evaluation() {
        // Use the global engine but a rule whose metric never exists, so
        // parallel tests can't perturb the phase.
        add_rule(Rule {
            name: "json-probe".into(),
            kind: RuleKind::Threshold {
                metric: "alerts.test.never_registered".into(),
                op: Op::Gt,
                value: 1.0,
            },
            for_duration: Duration::ZERO,
            cooldown: Duration::ZERO,
        });
        evaluate_now();
        let json = alerts_json();
        assert!(json.contains("\"json-probe\""), "{json}");
        assert!(json.contains("\"phase\":\"ok\""), "{json}");
        assert!(json.contains("alerts.test.never_registered"), "{json}");
    }
}
