//! # bpart-obs — the workspace observability layer
//!
//! The paper's headline claims (Figs. 11–14) are observability claims:
//! per-machine compute/communication skew, waiting ratios, and per-phase
//! partitioning cost. This crate is the measurement substrate behind them —
//! a zero-dependency (std-only), thread-safe layer shared by every crate:
//!
//! * **Span tracer** ([`tracer`]) — hierarchical wall-time spans with
//!   per-span `key=value` attributes and a bounded ring buffer of closed
//!   spans. Parent/child nesting is tracked per thread, so spans opened on
//!   the orchestrating thread nest naturally while worker threads get their
//!   own roots. Recording is gated by a runtime flag (one relaxed atomic
//!   load when off), so the tracer can ship enabled in release builds.
//! * **Metrics registry** ([`metrics`]) — named counters, gauges, and
//!   fixed-bucket histograms backed by relaxed atomics; cheap enough to
//!   stay on unconditionally. Handles are `&'static` and lock-free on the
//!   hot path (the registry lock is only taken at lookup time, which call
//!   sites cache in a `OnceLock`).
//! * **Exporters** ([`export`]) — a JSONL trace dump, a Prometheus-style
//!   text exposition of the registry, and a flame-style span-tree report
//!   ([`report`]) rendered by the `bpart report` CLI subcommand.
//! * **Live serving** ([`serve`]) — a std-only background HTTP server
//!   (`--serve-addr`) exposing `/metrics`, `/spans`, `/healthz`,
//!   `/progress`, `/profile`, and `/alerts` while a job runs.
//! * **Analysis** ([`analysis`]) — critical-path reconstruction over the
//!   span tree: which machine gated each superstep, per-machine blame
//!   (critical-path time vs barrier waiting, the automated Fig. 13
//!   reading), and straggler detection (`bpart report --critical-path`).
//! * **Federation** ([`federation`]) — cluster-wide merging of worker
//!   metrics snapshots, span deltas, and superstep timings for the
//!   multi-process backend: `worker="N"`-labelled series on `/metrics`,
//!   clock-offset-aligned trace export, and degraded-aware `/healthz`.
//! * **Continuous profiler** ([`profile`]) — a background sampler that
//!   snapshots each thread's live span stack into flamegraph-compatible
//!   folded-stack counts (`--profile-out`, `/profile`, and the cluster
//!   flame view in `bpart report --profile`), plus an optional
//!   global-allocator wrapper attributing bytes to the innermost span.
//! * **Tail-based sampling** ([`sampling`]) — admission control for the
//!   span ring on long runs: slow/flagged spans keep full detail, fast
//!   repetitive ones downsample probabilistically.
//! * **Alerting** ([`alerts`]) — declarative threshold / ratio /
//!   burn-rate / quantile rules over the metrics registry with
//!   for-duration + cooldown hysteresis, evaluated in the background,
//!   served on `/alerts`, and folded into `/healthz` degraded state.
//! * **Run history** ([`history`]) — one JSON record per run under
//!   `results/history/`, diffed by `bpart obs diff` with watched-metric
//!   regression gating.
//! * **Validation** ([`validate`]) — the structural checks behind the
//!   `obs_check` CI gate (non-empty traces, well-formed expositions with
//!   cumulative `le`-ordered histogram buckets).
//!
//! ## Naming scheme
//!
//! Span and metric names are dotted, `layer.phase[_unit]`:
//! `stream.pass`, `stream.buffer`, `combine.layer`, `cluster.superstep`,
//! `walker.superstep`, `multilevel.coarsen`; counters carry their unit as a
//! suffix (`stream.score_ns`, `exchange.bytes`). Dots are sanitised to
//! underscores in the Prometheus exposition (dots are not legal there).
//!
//! ## Example
//!
//! ```
//! use bpart_obs as obs;
//!
//! obs::set_trace_enabled(true);
//! {
//!     let mut span = obs::span("doc.outer");
//!     span.attr("answer", 42);
//!     let _inner = obs::span("doc.inner");
//! } // spans record on drop
//! obs::metrics::counter("doc.events").add(3);
//!
//! let spans = obs::tracer::snapshot();
//! assert!(spans.iter().any(|s| s.name == "doc.inner"));
//! let text = obs::metrics::prometheus_snapshot();
//! assert!(text.contains("doc_events"));
//! ```

pub mod alerts;
pub mod analysis;
pub mod export;
pub mod federation;
pub mod history;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod rss;
pub mod sampling;
pub mod serve;
pub mod tracer;
pub mod validate;

pub use tracer::{clear_trace, set_trace_enabled, span, trace_enabled, SpanGuard, SpanRecord};

/// Times `body` under a named span: `time_span!("stream.pass", { ... })`.
/// The span closes (and records) when the block finishes, panics included.
#[macro_export]
macro_rules! time_span {
    ($name:expr, $body:block) => {{
        let _obs_span = $crate::span($name);
        $body
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_span_macro_records_and_returns() {
        set_trace_enabled(true);
        let v = time_span!("lib.macro_test", { 21 * 2 });
        assert_eq!(v, 42);
        assert!(tracer::snapshot()
            .iter()
            .any(|s| s.name == "lib.macro_test"));
    }
}
