//! Critical-path analysis over a recorded span tree: the automated
//! version of reading the paper's Fig. 13.
//!
//! The engines attach per-machine `compute`/`comm` timing attributes to
//! every `cluster.superstep` / `walker.superstep` span (comma-joined
//! `f64` `Display` values — Rust's shortest round-trip formatting, so
//! [`parse_timings`] recovers the original bits exactly). [`analyze`]
//! reconstructs, per superstep, which machine *gated* the computation
//! phase (the slowest one — everyone else waits at the barrier for it,
//! paper §4.3) and rolls the steps up into a per-machine blame table:
//! time spent on the critical path versus time spent waiting.
//!
//! Waiting uses the same fold as `Telemetry::summary()` in
//! `bpart-cluster` (`max(compute) − compute_i`, summed in superstep
//! order, NaN-propagating max seeded at `0.0`), so the blame totals
//! agree with the run report *exactly*, not just to within rounding.

use std::fmt::Write as _;

use crate::report::ParsedSpan;

/// Span names that carry per-machine superstep timings.
const SUPERSTEP_SPANS: [&str; 2] = ["cluster.superstep", "walker.superstep"];

/// After this many per-superstep rows the rendering elides the middle.
const MAX_STEP_ROWS: usize = 40;

/// Joins per-machine timings into the attribute encoding: comma-joined
/// `{}` (shortest round-trip) representations, e.g. `"1.5,0,0.25"`.
pub fn join_timings(values: &[f64]) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out
}

/// Parses a [`join_timings`] encoding back to the original values
/// (bit-exact: Rust's `f64` `Display` round-trips).
pub fn parse_timings(s: &str) -> Result<Vec<f64>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            t.parse::<f64>()
                .map_err(|e| format!("bad timing {t:?}: {e}"))
        })
        .collect()
}

/// NaN-propagating max seeded at `0.0` — byte-for-byte the fold
/// `Telemetry` uses, so waiting times computed here match `summary()`.
fn max_nan_propagating(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, |acc, v| {
        if acc.is_nan() || v.is_nan() {
            f64::NAN
        } else {
            acc.max(v)
        }
    })
}

/// One superstep's timings, recovered from its span attributes.
#[derive(Clone, Debug, PartialEq)]
pub struct SuperstepTiming {
    /// Superstep index as recorded by the engine (repeats on replays).
    pub superstep: u64,
    /// True when this step re-executed already-completed work after a
    /// rollback.
    pub replay: bool,
    /// Computation-phase time per machine.
    pub compute: Vec<f64>,
    /// Communication-phase time per machine.
    pub comm: Vec<f64>,
}

impl SuperstepTiming {
    /// The machine that gated this superstep's computation phase: the
    /// slowest one (lowest index on ties; a NaN timing wins outright —
    /// a poisoned machine *is* the problem machine).
    pub fn gating_machine(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.compute.iter().enumerate() {
            let cur = self.compute[best];
            if c.is_nan() {
                return i;
            }
            if c > cur {
                best = i;
            }
        }
        best
    }

    /// Each machine's barrier wait this superstep (`max − compute_i`).
    pub fn waiting(&self) -> Vec<f64> {
        let max_c = max_nan_propagating(&self.compute);
        self.compute.iter().map(|&c| max_c - c).collect()
    }

    /// Median compute time (average of the middle pair for even counts);
    /// the straggler baseline.
    pub fn median_compute(&self) -> f64 {
        let mut sorted = self.compute.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }
}

/// One machine's row of the blame table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MachineBlame {
    /// Total compute time across all supersteps (matches
    /// `MachineWaiting::compute`).
    pub compute: f64,
    /// Total barrier waiting time (matches `MachineWaiting::waiting`).
    pub waiting: f64,
    /// Total communication time across all supersteps.
    pub comm: f64,
    /// Supersteps where this machine was the slowest (gated the barrier).
    pub gated_steps: u64,
    /// Compute time spent while gating — this machine's share of the
    /// run's critical path.
    pub critical_time: f64,
}

/// The full analysis: per-superstep gating plus the per-machine rollup.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// Supersteps in execution (start-time) order.
    pub steps: Vec<SuperstepTiming>,
    /// Blame rows indexed by machine id.
    pub machines: Vec<MachineBlame>,
}

/// A machine whose compute exceeded its superstep's median by the
/// configured factor.
#[derive(Clone, Debug, PartialEq)]
pub struct Straggler {
    /// Index into [`CriticalPath::steps`].
    pub step_index: usize,
    pub superstep: u64,
    pub machine: usize,
    pub compute: f64,
    pub median: f64,
}

/// Extracts superstep timings from a parsed trace and builds the
/// critical-path rollup. Fails with a hint when the trace has no
/// superstep spans carrying timing attributes (old traces, or a
/// partition-only run).
pub fn analyze(spans: &[ParsedSpan]) -> Result<CriticalPath, String> {
    let mut timed: Vec<(&ParsedSpan, SuperstepTiming)> = Vec::new();
    for s in spans {
        if !SUPERSTEP_SPANS.contains(&s.name.as_str()) {
            continue;
        }
        let Some(compute) = s.attrs.get("compute") else {
            // Aborted supersteps (crash before the record) carry no
            // timings and contribute zero waiting; skip them.
            continue;
        };
        let compute = parse_timings(compute)
            .map_err(|e| format!("span {} ({}): compute: {e}", s.id, s.name))?;
        let comm = match s.attrs.get("comm") {
            Some(c) => {
                parse_timings(c).map_err(|e| format!("span {} ({}): comm: {e}", s.id, s.name))?
            }
            None => vec![0.0; compute.len()],
        };
        let superstep = s
            .attrs
            .get("superstep")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let replay = s.attrs.get("replay").is_some_and(|v| v == "true");
        timed.push((
            s,
            SuperstepTiming {
                superstep,
                replay,
                compute,
                comm,
            },
        ));
    }
    if timed.is_empty() {
        return Err("no superstep spans with timing attributes found \
             (is this a `bpart run` trace recorded with --trace-out? \
             traces from before the analysis layer lack compute/comm attrs)"
            .to_string());
    }
    timed.sort_by_key(|(s, _)| s.start_ns);

    let machines_n = timed[0].1.compute.len();
    let mut machines = vec![MachineBlame::default(); machines_n];
    let mut steps = Vec::with_capacity(timed.len());
    for (s, t) in timed {
        if t.compute.len() != machines_n || t.comm.len() != machines_n {
            return Err(format!(
                "span {} ({}): machine count changed mid-run ({} vs {machines_n})",
                s.id,
                s.name,
                t.compute.len().max(t.comm.len()),
            ));
        }
        for (m, w) in machines.iter_mut().zip(t.waiting()) {
            m.waiting += w;
        }
        for (m, &c) in machines.iter_mut().zip(&t.compute) {
            m.compute += c;
        }
        for (m, &c) in machines.iter_mut().zip(&t.comm) {
            m.comm += c;
        }
        let gate = t.gating_machine();
        machines[gate].gated_steps += 1;
        machines[gate].critical_time += t.compute[gate];
        steps.push(t);
    }
    Ok(CriticalPath { steps, machines })
}

/// Machines whose compute exceeded their superstep's median by more than
/// `factor` (only meaningful for `factor >= 1` and a positive median).
pub fn stragglers(cp: &CriticalPath, factor: f64) -> Vec<Straggler> {
    let mut out = Vec::new();
    for (step_index, t) in cp.steps.iter().enumerate() {
        let median = t.median_compute();
        // Skip zero/NaN medians: every compute is zero (aborted step) or
        // the data is poisoned, so "straggler" is meaningless.
        if median.is_nan() || median <= 0.0 {
            continue;
        }
        for (machine, &c) in t.compute.iter().enumerate() {
            if c > median * factor {
                out.push(Straggler {
                    step_index,
                    superstep: t.superstep,
                    machine,
                    compute: c,
                    median,
                });
            }
        }
    }
    out
}

/// Renders the `bpart report --critical-path` output: per-superstep
/// gating rows (elided past [`MAX_STEP_ROWS`]), the per-machine blame
/// table, and the straggler list for `factor`.
pub fn render(cp: &CriticalPath, factor: f64) -> String {
    let mut out = String::new();
    let k = cp.machines.len();
    let _ = writeln!(
        out,
        "critical path: {} supersteps, {k} machines",
        cp.steps.len()
    );
    let _ = writeln!(
        out,
        "\n{:>9}  {:>7}  {:>12}  {:>12}",
        "superstep", "gate", "compute", "waiting"
    );
    let shown = cp.steps.len().min(MAX_STEP_ROWS);
    for t in &cp.steps[..shown] {
        let gate = t.gating_machine();
        let replay = if t.replay { " (replay)" } else { "" };
        let _ = writeln!(
            out,
            "{:>9}  {:>7}  {:>12.4}  {:>12.4}{replay}",
            t.superstep,
            format!("m{gate}"),
            t.compute[gate],
            t.waiting().iter().sum::<f64>(),
        );
    }
    if cp.steps.len() > shown {
        let _ = writeln!(out, "  … {} more supersteps elided", cp.steps.len() - shown);
    }

    let total_critical: f64 = cp.machines.iter().map(|m| m.critical_time).sum();
    let _ = writeln!(out, "\nper-machine blame (critical-path share vs waiting)");
    let _ = writeln!(
        out,
        "{:>7}  {:>12}  {:>12}  {:>12}  {:>12}  {:>6}",
        "machine", "compute", "waiting", "comm", "critical", "gated"
    );
    for (i, m) in cp.machines.iter().enumerate() {
        let share = if total_critical > 0.0 {
            format!(" ({:.1}%)", m.critical_time * 100.0 / total_critical)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{:>7}  {:>12.4}  {:>12.4}  {:>12.4}  {:>12.4}  {:>6}{share}",
            format!("m{i}"),
            m.compute,
            m.waiting,
            m.comm,
            m.critical_time,
            m.gated_steps,
        );
    }

    let found = stragglers(cp, factor);
    let _ = writeln!(out, "\nstragglers (compute > superstep median × {factor})");
    if found.is_empty() {
        let _ = writeln!(out, "  none");
    } else {
        for s in found {
            let _ = writeln!(
                out,
                "  superstep {:>4}: m{} compute {:.4} vs median {:.4} ({:.2}×)",
                s.superstep,
                s.machine,
                s.compute,
                s.median,
                s.compute / s.median,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_span(id: u64, start_ns: u64, name: &str, attrs: &[(&str, String)]) -> ParsedSpan {
        ParsedSpan {
            id,
            parent: None,
            name: name.to_string(),
            thread: 0,
            start_ns,
            dur_ns: 1,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    fn timing_attrs(superstep: u64, compute: &[f64], comm: &[f64]) -> Vec<(&'static str, String)> {
        vec![
            ("superstep", superstep.to_string()),
            ("compute", join_timings(compute)),
            ("comm", join_timings(comm)),
        ]
    }

    #[test]
    fn timings_roundtrip_bit_exactly() {
        let values = vec![0.1, 1.0 / 3.0, 2.5e-17, 0.0, 123456.789, f64::MAX];
        let parsed = parse_timings(&join_timings(&values)).unwrap();
        assert_eq!(values.len(), parsed.len());
        for (a, b) in values.iter().zip(&parsed) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        assert_eq!(parse_timings("").unwrap(), Vec::<f64>::new());
        assert!(parse_timings("1.0,zebra").is_err());
    }

    #[test]
    fn analyze_blames_the_slowest_machine_per_step() {
        let spans = vec![
            step_span(
                1,
                100,
                "cluster.superstep",
                &timing_attrs(0, &[4.0, 2.0], &[0.5, 0.5]),
            ),
            step_span(
                2,
                200,
                "cluster.superstep",
                &timing_attrs(1, &[1.0, 3.0], &[1.0, 1.0]),
            ),
        ];
        let cp = analyze(&spans).unwrap();
        assert_eq!(cp.steps.len(), 2);
        assert_eq!(cp.steps[0].gating_machine(), 0);
        assert_eq!(cp.steps[1].gating_machine(), 1);
        // Same numbers as telemetry.rs's aggregates_over_iterations test.
        assert_eq!(cp.machines[0].compute, 5.0);
        assert_eq!(cp.machines[0].waiting, 2.0);
        assert_eq!(cp.machines[1].waiting, 2.0);
        assert_eq!(cp.machines[0].comm, 1.5);
        assert_eq!(cp.machines[0].gated_steps, 1);
        assert_eq!(cp.machines[0].critical_time, 4.0);
        assert_eq!(cp.machines[1].critical_time, 3.0);
    }

    #[test]
    fn analyze_sorts_by_start_time_and_ties_go_to_lowest_machine() {
        // Inserted out of order; step at t=50 must come first.
        let spans = vec![
            step_span(
                7,
                900,
                "walker.superstep",
                &timing_attrs(1, &[1.0, 1.0, 1.0], &[0.0, 0.0, 0.0]),
            ),
            step_span(
                3,
                50,
                "walker.superstep",
                &timing_attrs(0, &[2.0, 2.0, 1.0], &[0.0, 0.0, 0.0]),
            ),
        ];
        let cp = analyze(&spans).unwrap();
        assert_eq!(cp.steps[0].superstep, 0);
        // Ties: m0 and m1 both at 2.0 (step 0), all at 1.0 (step 1) — m0 wins.
        assert_eq!(cp.machines[0].gated_steps, 2);
        assert_eq!(cp.machines[1].gated_steps, 0);
    }

    #[test]
    fn analyze_skips_attr_less_spans_and_errors_when_none_qualify() {
        let bare = step_span(1, 0, "cluster.superstep", &[("superstep", "0".to_string())]);
        let other = step_span(2, 5, "stream.pass", &[]);
        let err = analyze(&[bare.clone(), other.clone()]).unwrap_err();
        assert!(err.contains("no superstep spans"), "{err}");

        // A bare (aborted) step next to a timed one is skipped, not fatal.
        let timed = step_span(
            3,
            10,
            "cluster.superstep",
            &timing_attrs(1, &[1.0, 5.0], &[0.0, 0.0]),
        );
        let cp = analyze(&[bare, other, timed]).unwrap();
        assert_eq!(cp.steps.len(), 1);
        assert_eq!(cp.machines[1].gated_steps, 1);
    }

    #[test]
    fn analyze_rejects_mid_run_machine_count_changes() {
        let spans = vec![
            step_span(
                1,
                0,
                "cluster.superstep",
                &timing_attrs(0, &[1.0, 2.0], &[0.0, 0.0]),
            ),
            step_span(
                2,
                10,
                "cluster.superstep",
                &timing_attrs(1, &[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]),
            ),
        ];
        let err = analyze(&spans).unwrap_err();
        assert!(err.contains("machine count changed"), "{err}");
    }

    #[test]
    fn replay_and_missing_comm_are_tolerated() {
        let attrs = vec![
            ("superstep", "4".to_string()),
            ("compute", join_timings(&[3.0, 1.0])),
            ("replay", "true".to_string()),
        ];
        let span = step_span(1, 0, "cluster.superstep", &attrs);
        let cp = analyze(&[span]).unwrap();
        assert!(cp.steps[0].replay);
        assert_eq!(cp.steps[0].comm, vec![0.0, 0.0]);
        assert_eq!(cp.steps[0].superstep, 4);
    }

    #[test]
    fn stragglers_compare_against_the_superstep_median() {
        let spans = vec![step_span(
            1,
            0,
            "cluster.superstep",
            &timing_attrs(0, &[1.0, 1.2, 0.9, 5.0], &[0.0; 4]),
        )];
        let cp = analyze(&spans).unwrap();
        // Median of [0.9, 1.0, 1.2, 5.0] = 1.1; only m3 exceeds 2×.
        let found = stragglers(&cp, 2.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].machine, 3);
        assert_eq!(found[0].superstep, 0);
        assert!((found[0].median - 1.1).abs() < 1e-12);
        // A generous factor finds nothing.
        assert!(stragglers(&cp, 10.0).is_empty());
    }

    #[test]
    fn render_names_the_gate_and_lists_stragglers() {
        let spans = vec![
            step_span(
                1,
                0,
                "cluster.superstep",
                &timing_attrs(0, &[4.0, 1.0], &[0.5, 0.5]),
            ),
            step_span(
                2,
                10,
                "cluster.superstep",
                &timing_attrs(1, &[1.0, 3.0], &[0.5, 0.5]),
            ),
        ];
        let cp = analyze(&spans).unwrap();
        let text = render(&cp, 2.0);
        assert!(text.contains("2 supersteps, 2 machines"), "{text}");
        assert!(text.contains("m0"), "{text}");
        assert!(text.contains("per-machine blame"), "{text}");
        assert!(text.contains("stragglers"), "{text}");
        // m0 gates step 0 at 4.0 compute vs median 2.5 — not a 2× straggler;
        // but against factor 1.5 it is.
        assert!(render(&cp, 1.5).contains("superstep    0: m0"));
    }

    #[test]
    fn nan_compute_poisons_waiting_and_wins_gating() {
        let spans = vec![step_span(
            1,
            0,
            "cluster.superstep",
            &timing_attrs(0, &[1.0, f64::NAN], &[0.0, 0.0]),
        )];
        let cp = analyze(&spans).unwrap();
        assert_eq!(cp.steps[0].gating_machine(), 1);
        assert!(cp.machines.iter().all(|m| m.waiting.is_nan()));
    }
}
