//! Run history: one JSON record per run under `results/history/`, and a
//! watched-metric regression diff between two records.
//!
//! A record captures what would otherwise only live in scrollback —
//! which graph, which configuration, which commit, and the run's
//! headline numbers (wall time, cut ratio, plus whatever metrics the
//! emitter attaches). `bpart obs diff a.json b.json` then compares two
//! records metric by metric and fails (non-zero exit, via the CLI) when
//! a *watched* metric regressed beyond its threshold; this is the gate
//! that keeps the bench trajectory honest.
//!
//! All metrics are lower-is-better by convention (times, ratios, cut
//! fractions); a watched metric regresses when
//! `b > a × (1 + max_increase)`. Records are single-line JSON:
//!
//! ```text
//! {"label":"run","graph":"lj_like","git_rev":"abc123","unix_time":1754000000,
//!  "config":{"parts":"8"},"metrics":{"wall_time_secs":1.25,"cut_ratio":0.31}}
//! ```
//!
//! Cross-host caveat: wall times are only comparable between runs on the
//! same machine. CI therefore watches the deterministic quality metrics
//! (cut ratios, which are bit-identical for sequential streaming on any
//! host) and leaves wall-time watching to same-host workflows.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::export::{ensure_parent_dir, escape_json};
use crate::report::Parser;

/// One run's history record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunRecord {
    /// What kind of run this was (`"run"`, `"partition"`, a bench name).
    pub label: String,
    /// Input graph (path or generator name).
    pub graph: String,
    /// Git revision the run was built from, as passed in by the caller
    /// (`--git-rev`, `$GITHUB_SHA`); `"unknown"` when unavailable.
    pub git_rev: String,
    /// Seconds since the Unix epoch when the record was created.
    pub unix_time: u64,
    /// Configuration key/values (parts, scheme, threads, …) as strings.
    pub config: BTreeMap<String, String>,
    /// Named measurements, lower-is-better by convention.
    pub metrics: BTreeMap<String, f64>,
}

impl RunRecord {
    /// A fresh record stamped with the current time and the ambient git
    /// revision ([`env_git_rev`]).
    pub fn new(label: &str, graph: &str) -> Self {
        RunRecord {
            label: label.to_string(),
            graph: graph.to_string(),
            git_rev: env_git_rev(),
            unix_time: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            config: BTreeMap::new(),
            metrics: BTreeMap::new(),
        }
    }

    /// Overrides the git revision (the CLI's `--git-rev` flag).
    pub fn with_git_rev(mut self, rev: &str) -> Self {
        self.git_rev = rev.to_string();
        self
    }

    /// Records one configuration key (stringly; it is provenance, not
    /// data to compute on).
    pub fn set_config(&mut self, key: &str, value: impl std::fmt::Display) {
        self.config.insert(key.to_string(), value.to_string());
    }

    /// Records one measurement.
    pub fn set_metric(&mut self, key: &str, value: f64) {
        self.metrics.insert(key.to_string(), value);
    }

    /// Renders the record as one line of JSON (no trailing newline).
    /// Non-finite metric values become `null` (JSON has no NaN/Inf).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"graph\":\"{}\",\"git_rev\":\"{}\",\"unix_time\":{}",
            escape_json(&self.label),
            escape_json(&self.graph),
            escape_json(&self.git_rev),
            self.unix_time,
        );
        out.push_str(",\"config\":{");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("},\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if v.is_finite() {
                let _ = write!(out, "\"{}\":{v}", escape_json(k));
            } else {
                let _ = write!(out, "\"{}\":null", escape_json(k));
            }
        }
        out.push_str("}}");
        out
    }

    /// Parses a [`to_json`] record back (`null` metrics come back NaN).
    pub fn from_json(text: &str) -> Result<RunRecord, String> {
        let mut p = Parser::new(text.trim());
        let mut record = RunRecord::default();
        let mut saw_label = false;
        p.expect('{')?;
        if !p.try_consume('}') {
            loop {
                let key = p.string()?;
                p.expect(':')?;
                match key.as_str() {
                    "label" => {
                        record.label = p.string()?;
                        saw_label = true;
                    }
                    "graph" => record.graph = p.string()?,
                    "git_rev" => record.git_rev = p.string()?,
                    "unix_time" => record.unix_time = p.u64()?,
                    "config" => record.config = p.string_map()?,
                    "metrics" => record.metrics = p.f64_map()?,
                    other => return Err(format!("unknown key {other:?}")),
                }
                if !p.try_consume(',') {
                    break;
                }
            }
            p.expect('}')?;
        }
        p.end()?;
        if !saw_label {
            return Err("missing \"label\"".to_string());
        }
        Ok(record)
    }

    /// Writes the record to `path`, creating missing parent directories
    /// (history lands under `results/history/`, which need not exist).
    pub fn write(&self, path: &Path) -> io::Result<()> {
        ensure_parent_dir(path)?;
        std::fs::write(path, format!("{}\n", self.to_json()))
    }

    /// Reads a record back from `path`.
    pub fn read(path: &Path) -> Result<RunRecord, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        RunRecord::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The git revision the environment knows about: `BPART_GIT_REV` (set by
/// callers/tests), else `GITHUB_SHA` (set by CI), else `"unknown"`. No
/// subprocess is spawned — a library must not shell out to `git`.
pub fn env_git_rev() -> String {
    std::env::var("BPART_GIT_REV")
        .or_else(|_| std::env::var("GITHUB_SHA"))
        .unwrap_or_else(|_| "unknown".to_string())
}

/// A regression watch: `metric` may grow by at most `max_increase`
/// (fractional; `0.05` = 5%) between the baseline and the candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct Watch {
    pub metric: String,
    pub max_increase: f64,
}

impl Watch {
    pub fn new(metric: &str, max_increase: f64) -> Self {
        Watch {
            metric: metric.to_string(),
            max_increase,
        }
    }
}

/// One metric's comparison between two records.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    pub name: String,
    /// Baseline value (`None` when the metric is new in `b`).
    pub a: Option<f64>,
    /// Candidate value (`None` when the metric disappeared).
    pub b: Option<f64>,
    pub watched: bool,
    /// True when the watch's threshold was exceeded.
    pub regressed: bool,
}

/// The full diff between two records.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    pub a_label: String,
    pub b_label: String,
    pub deltas: Vec<MetricDelta>,
}

impl DiffReport {
    /// Whether any watched metric regressed beyond its threshold.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// Renders the per-metric delta table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "history diff: {} → {}", self.a_label, self.b_label);
        let name_w = self
            .deltas
            .iter()
            .map(|d| d.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>14}  {:>14}  {:>9}",
            "metric", "baseline", "candidate", "delta"
        );
        for d in &self.deltas {
            let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.6}"));
            let delta = match (d.a, d.b) {
                (Some(a), Some(b)) if a != 0.0 && a.is_finite() && b.is_finite() => {
                    format!("{:+.2}%", (b - a) * 100.0 / a)
                }
                _ => "-".to_string(),
            };
            let mark = if d.regressed {
                "  REGRESSED"
            } else if d.watched {
                "  watched"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>14}  {:>14}  {:>9}{mark}",
                d.name,
                fmt(d.a),
                fmt(d.b),
                delta,
            );
        }
        if self.has_regressions() {
            let _ = writeln!(out, "\nwatched metric(s) regressed beyond threshold");
        } else {
            let _ = writeln!(out, "\nno watched regressions");
        }
        out
    }
}

/// Compares two records over the union of their metric names. A watched
/// metric regresses when both values exist, the baseline is positive and
/// finite, and `b > a × (1 + max_increase)` (lower is better). NaN on
/// either side never counts as a regression — it shows as `-`/`NaN` in
/// the table instead of failing the gate on unreadable data.
pub fn diff(a: &RunRecord, b: &RunRecord, watches: &[Watch]) -> DiffReport {
    let mut names: Vec<&String> = a.metrics.keys().chain(b.metrics.keys()).collect();
    names.sort();
    names.dedup();
    let deltas = names
        .into_iter()
        .map(|name| {
            let av = a.metrics.get(name).copied();
            let bv = b.metrics.get(name).copied();
            let watch = watches.iter().find(|w| &w.metric == name);
            let regressed = match (watch, av, bv) {
                (Some(w), Some(av), Some(bv)) => {
                    av.is_finite() && av > 0.0 && bv > av * (1.0 + w.max_increase)
                }
                _ => false,
            };
            MetricDelta {
                name: name.clone(),
                a: av,
                b: bv,
                watched: watch.is_some(),
                regressed,
            }
        })
        .collect();
    DiffReport {
        a_label: a.label.clone(),
        b_label: b.label.clone(),
        deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        let mut r = RunRecord::new("run", "lj_like").with_git_rev("abc123");
        r.set_config("parts", 8);
        r.set_config("scheme", "bpart-p1");
        r.set_metric("wall_time_secs", 1.25);
        r.set_metric("cut_ratio", 0.3125);
        r
    }

    #[test]
    fn record_roundtrips_through_json() {
        let mut r = sample();
        r.set_config("note", "quotes \" and \\ back\nslash");
        r.set_metric("poisoned", f64::NAN);
        let parsed = RunRecord::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(parsed.label, "run");
        assert_eq!(parsed.graph, "lj_like");
        assert_eq!(parsed.git_rev, "abc123");
        assert_eq!(parsed.unix_time, r.unix_time);
        assert_eq!(parsed.config, r.config);
        assert_eq!(parsed.metrics["wall_time_secs"], 1.25);
        assert_eq!(parsed.metrics["cut_ratio"], 0.3125);
        // Non-finite went out as null and came back NaN.
        assert!(r.to_json().contains("\"poisoned\":null"));
        assert!(parsed.metrics["poisoned"].is_nan());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(RunRecord::from_json("").is_err());
        assert!(
            RunRecord::from_json("{\"graph\":\"g\"}").is_err(),
            "label required"
        );
        assert!(RunRecord::from_json("{\"label\":\"x\"} trailing").is_err());
        assert!(RunRecord::from_json("{\"label\":\"x\",\"metrics\":{\"m\":oops}}").is_err());
    }

    #[test]
    fn write_creates_history_directory_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("bpart_obs_history_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("results/history/run.json");
        let r = sample();
        r.write(&path).expect("write must create parents");
        let back = RunRecord::read(&path).expect("read");
        assert_eq!(back, r);
        assert!(RunRecord::read(&dir.join("missing.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_flags_only_watched_regressions_beyond_threshold() {
        let mut a = sample();
        let mut b = sample();
        b.label = "candidate".to_string();
        // >5% wall-time regression (the acceptance-criteria case).
        a.set_metric("wall_time_secs", 1.0);
        b.set_metric("wall_time_secs", 1.2);
        // Within threshold.
        a.set_metric("cut_ratio", 0.30);
        b.set_metric("cut_ratio", 0.305);
        // Huge increase on an unwatched metric: reported, not fatal.
        a.set_metric("messages", 100.0);
        b.set_metric("messages", 900.0);
        let watches = vec![
            Watch::new("wall_time_secs", 0.05),
            Watch::new("cut_ratio", 0.05),
        ];
        let report = diff(&a, &b, &watches);
        assert!(report.has_regressions());
        let wall = report
            .deltas
            .iter()
            .find(|d| d.name == "wall_time_secs")
            .unwrap();
        assert!(wall.regressed && wall.watched);
        let cut = report
            .deltas
            .iter()
            .find(|d| d.name == "cut_ratio")
            .unwrap();
        assert!(cut.watched && !cut.regressed);
        let msgs = report.deltas.iter().find(|d| d.name == "messages").unwrap();
        assert!(!msgs.watched && !msgs.regressed);
        let text = report.render();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("+20.00%"), "{text}");

        // A 1% change passes the 5% watch.
        b.set_metric("wall_time_secs", 1.01);
        assert!(!diff(&a, &b, &watches).has_regressions());
    }

    #[test]
    fn diff_tolerates_missing_and_nan_metrics() {
        let mut a = sample();
        let mut b = sample();
        a.set_metric("only_in_a", 1.0);
        b.set_metric("only_in_b", 2.0);
        a.set_metric("wall_time_secs", f64::NAN);
        b.set_metric("wall_time_secs", 99.0);
        let watches = vec![
            Watch::new("wall_time_secs", 0.05),
            Watch::new("only_in_b", 0.05),
        ];
        let report = diff(&a, &b, &watches);
        // NaN baseline and one-sided metrics never regress.
        assert!(!report.has_regressions());
        assert_eq!(report.deltas.iter().filter(|d| d.a.is_none()).count(), 1);
        assert_eq!(report.deltas.iter().filter(|d| d.b.is_none()).count(), 1);
        let text = report.render();
        assert!(text.contains("only_in_a"), "{text}");
        assert!(text.contains("no watched regressions"), "{text}");
    }

    #[test]
    fn env_git_rev_prefers_explicit_override() {
        // Can't mutate the environment safely in parallel tests; just
        // check the fallback contract on whatever is ambient.
        let rev = env_git_rev();
        assert!(!rev.is_empty());
    }
}
