//! The hierarchical span tracer.
//!
//! A span is opened with [`span`](crate::span) and records itself into a
//! global, bounded ring buffer when its guard drops: name, wall time,
//! parent span (the innermost span still open *on the same thread*), a
//! small thread ordinal, and any `key=value` attributes attached while it
//! was open. The ring holds the most recent [`ring_capacity`] spans; older
//! spans are evicted and counted in [`dropped_spans`] so exports can report
//! truncation instead of silently looking complete.
//!
//! Recording is gated by a process-wide flag ([`set_trace_enabled`]):
//! when off, opening a span is one relaxed atomic load and no allocation,
//! which is what lets instrumentation ship enabled in release builds.
//!
//! Parenting is per-thread by design: the engines open phase spans on the
//! orchestrating thread (supersteps, buffers, layers nest there), while
//! scoped worker threads — which the buffered streaming engine spawns per
//! chunk — would otherwise race for one global stack. A span opened on a
//! worker thread becomes a root for that thread.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring-buffer capacity (closed spans retained).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// One closed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Unique id (monotonic across the process).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name (`layer.phase`).
    pub name: &'static str,
    /// Small per-thread ordinal (not the OS thread id).
    pub thread: u64,
    /// Nanoseconds since the tracer epoch at open.
    pub start_ns: u64,
    /// Wall-time duration in nanoseconds.
    pub dur_ns: u64,
    /// Attributes attached while the span was open.
    pub attrs: Vec<(&'static str, String)>,
}

struct TracerState {
    enabled: AtomicBool,
    next_span_id: AtomicU64,
    next_thread_ord: AtomicU64,
    dropped: AtomicU64,
    capacity: AtomicUsize,
    epoch: OnceLock<Instant>,
    ring: Mutex<Vec<SpanRecord>>,
}

fn state() -> &'static TracerState {
    static STATE: OnceLock<TracerState> = OnceLock::new();
    STATE.get_or_init(|| TracerState {
        enabled: AtomicBool::new(false),
        next_span_id: AtomicU64::new(1),
        next_thread_ord: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
        epoch: OnceLock::new(),
        ring: Mutex::new(Vec::new()),
    })
}

thread_local! {
    /// Innermost-last stack of open span ids on this thread.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORD: u64 = state().next_thread_ord.fetch_add(1, Ordering::Relaxed);
}

/// Turns span recording on or off process-wide. Off is the default; the
/// CLI enables it when `--trace-out` is passed, benches for the overhead
/// measurement. Metrics counters are unaffected (always on).
pub fn set_trace_enabled(enabled: bool) {
    state().enabled.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently on.
pub fn trace_enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// Caps the number of retained closed spans (evicting oldest first).
pub fn set_ring_capacity(capacity: usize) {
    state().capacity.store(capacity.max(1), Ordering::Relaxed);
}

/// Spans evicted from the ring since the last [`clear_trace`].
pub fn dropped_spans() -> u64 {
    state().dropped.load(Ordering::Relaxed)
}

/// Nanoseconds since the tracer epoch (initialising the epoch on first
/// use). This is the clock `start_ns` is measured on, so timestamps taken
/// here are directly comparable to recorded spans — the federation layer
/// uses it for its clock-offset echoes so rebased worker spans land on
/// the driver's span timeline.
pub fn now_ns() -> u64 {
    let s = state();
    let epoch = *s.epoch.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Discards all recorded spans and resets the eviction counter. Call
/// before a run whose trace will be exported, so the file covers exactly
/// that run.
pub fn clear_trace() {
    let s = state();
    s.ring.lock().expect("tracer ring poisoned").clear();
    s.dropped.store(0, Ordering::Relaxed);
}

/// Snapshot (clone) of the retained spans, oldest first.
pub fn snapshot() -> Vec<SpanRecord> {
    state().ring.lock().expect("tracer ring poisoned").clone()
}

/// Opens a span; it records itself when the guard drops. When tracing is
/// disabled this is one atomic load and the guard is inert.
pub fn span(name: &'static str) -> SpanGuard {
    let s = state();
    if !s.enabled.load(Ordering::Relaxed) {
        return SpanGuard { open: None };
    }
    let epoch = *s.epoch.get_or_init(Instant::now);
    let id = s.next_span_id.fetch_add(1, Ordering::Relaxed);
    let (parent, thread) = OPEN.with(|open| {
        let mut open = open.borrow_mut();
        let parent = open.last().copied();
        open.push(id);
        (parent, THREAD_ORD.with(|&t| t))
    });
    // The continuous profiler mirrors the open stack as a shared
    // name stack the sampler thread can snapshot; the guard remembers
    // whether it pushed so toggling profiling mid-span never unbalances.
    let profiled = crate::profile::push_live(name);
    SpanGuard {
        open: Some(OpenSpan {
            id,
            parent,
            name,
            thread,
            start_ns: epoch.elapsed().as_nanos() as u64,
            started: Instant::now(),
            attrs: Vec::new(),
            profiled,
            keep: false,
        }),
    }
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    thread: u64,
    start_ns: u64,
    started: Instant,
    attrs: Vec<(&'static str, String)>,
    /// Whether this span pushed onto the profiler's live stack.
    profiled: bool,
    /// Pin against tail sampling (see [`SpanGuard::keep`]).
    keep: bool,
}

/// An open span; closes (and records) on drop.
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl SpanGuard {
    /// Attaches a `key=value` attribute (value via `Display`). A no-op on
    /// an inert guard, so call sites need no enabled-check of their own.
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(open) = &mut self.open {
            open.attrs.push((key, value.to_string()));
        }
    }

    /// The span id, when recording (useful in tests).
    pub fn id(&self) -> Option<u64> {
        self.open.as_ref().map(|o| o.id)
    }

    /// Pins this span against tail-based sampling: it is always admitted
    /// to the ring regardless of the downsampling policy. Fault, replay,
    /// and stall sites call this so incident context survives long runs
    /// at full detail (see [`crate::sampling`]). A no-op on an inert
    /// guard and when tail sampling is off.
    pub fn keep(&mut self) {
        if let Some(open) = &mut self.open {
            open.keep = true;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        OPEN.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop in LIFO order within a thread, so the top of the
            // stack is this span; be defensive about leaked guards anyway.
            if stack.last() == Some(&open.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != open.id);
            }
        });
        if open.profiled {
            crate::profile::pop_live(open.name);
        }
        let dur_ns = open.started.elapsed().as_nanos() as u64;
        // Tail-based admission: the stack bookkeeping above already
        // happened, so a sampled-out span simply leaves no record.
        if !crate::sampling::admit(open.name, dur_ns, open.keep) {
            return;
        }
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            thread: open.thread,
            start_ns: open.start_ns,
            dur_ns,
            attrs: open.attrs,
        };
        let s = state();
        let cap = s.capacity.load(Ordering::Relaxed);
        let mut ring = s.ring.lock().expect("tracer ring poisoned");
        if ring.len() >= cap {
            // Evict the oldest overflow in one drain (amortised O(1) per
            // span for the common cap-by-one case).
            let excess = ring.len() + 1 - cap;
            ring.drain(..excess);
            s.dropped.fetch_add(excess as u64, Ordering::Relaxed);
        }
        ring.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spans from other tests (the tracer is global and tests run in
    /// parallel) are filtered out by name prefix.
    fn named(prefix: &str) -> Vec<SpanRecord> {
        snapshot()
            .into_iter()
            .filter(|s| s.name.starts_with(prefix))
            .collect()
    }

    #[test]
    fn nesting_records_parent_child_on_one_thread() {
        set_trace_enabled(true);
        let outer_id;
        {
            let mut outer = span("t.nest.outer");
            outer.attr("k", 8);
            outer_id = outer.id().unwrap();
            {
                let _inner = span("t.nest.inner");
            }
        }
        let spans = named("t.nest.");
        let inner = spans.iter().find(|s| s.name == "t.nest.inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "t.nest.outer").unwrap();
        assert_eq!(inner.parent, Some(outer_id));
        assert_eq!(outer.id, outer_id);
        assert_eq!(outer.attrs, vec![("k", "8".to_string())]);
        // The inner span closed first, so it appears first in the ring.
        assert!(inner.dur_ns <= outer.dur_ns);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        set_trace_enabled(false);
        {
            let mut g = span("t.disabled.span");
            g.attr("ignored", 1);
            assert!(g.id().is_none());
        }
        assert!(named("t.disabled.").is_empty());
        set_trace_enabled(true);
    }

    #[test]
    fn concurrent_threads_lose_no_spans_and_misparent_none() {
        // The satellite-task test: scoped threads record concurrently; every
        // span must land in the ring, children parented to *their own
        // thread's* root, roots parentless or parented to pre-existing
        // spans on the spawning stack (none here).
        set_trace_enabled(true);
        const THREADS: usize = 8;
        const ROOTS_PER_THREAD: usize = 50;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    let _ = t;
                    for _ in 0..ROOTS_PER_THREAD {
                        let root = span("t.conc.root");
                        let root_id = root.id().unwrap();
                        {
                            let child = span("t.conc.child");
                            // Parent must be this thread's root, checked at
                            // open time via the guard linkage below.
                            assert!(child.id().unwrap() > root_id);
                        }
                    }
                });
            }
        });
        let spans = named("t.conc.");
        let roots: Vec<_> = spans.iter().filter(|s| s.name == "t.conc.root").collect();
        let children: Vec<_> = spans.iter().filter(|s| s.name == "t.conc.child").collect();
        assert_eq!(roots.len(), THREADS * ROOTS_PER_THREAD, "lost root spans");
        assert_eq!(children.len(), THREADS * ROOTS_PER_THREAD, "lost children");
        let root_by_id: std::collections::HashMap<u64, &SpanRecord> =
            roots.iter().map(|s| (s.id, *s)).collect();
        for child in children {
            let parent_id = child.parent.expect("child span must have a parent");
            let parent = root_by_id
                .get(&parent_id)
                .expect("child must parent to a t.conc.root span");
            assert_eq!(
                parent.thread, child.thread,
                "span parented across threads: {child:?}"
            );
        }
    }

    #[test]
    fn ring_eviction_counts_dropped_spans() {
        // Use a dedicated prefix then restore capacity: this test races
        // with others for the shared ring, so only relative claims hold.
        set_trace_enabled(true);
        let before = dropped_spans();
        let old_cap = state().capacity.load(Ordering::Relaxed);
        set_ring_capacity(16);
        for _ in 0..64 {
            let _s = span("t.evict.span");
        }
        assert!(dropped_spans() > before, "eviction must be counted");
        assert!(snapshot().len() <= 16);
        set_ring_capacity(old_cap);
    }
}
