//! Property tests for the federation merge algebra.
//!
//! The driver merges worker `ObsReport`s in whatever order the network
//! delivers them, retries can duplicate them, and two stores may be
//! merged wholesale (e.g. when reconciling a restarted driver). For the
//! federated view to be trustworthy, the merge must therefore be a
//! semilattice join:
//!
//! 1. **Associative + commutative** — `merge` gives the same store for
//!    any grouping and order of inputs.
//! 2. **Idempotent** — merging a store with itself (or absorbing a
//!    duplicated report) changes nothing.
//! 3. **Injective worker labels** — Prometheus label sanitisation can
//!    never collide two distinct workers into one series.
//!
//! Stores are built through the real `absorb_report` wire path (encoded
//! snapshot + span bytes), not synthetic structs, so the properties
//! cover the codec too.

use bpart_obs::federation::{encode_spans, FederationStore, MetricsSnapshot, StepSample, WireSpan};
use proptest::prelude::*;

/// One synthetic worker report: identity, payload knobs, and a step
/// timing sample, all small enough to force collisions across cases.
type Report = ((u32, u32, u64), (u64, u64, u64));

fn report_strategy() -> impl Strategy<Value = Vec<Report>> {
    prop::collection::vec(
        (
            // (worker, epoch, seq): tiny domains so reports collide.
            (0u32..3, 0u32..3, 0u64..4),
            // (counter value, superstep, compute_ns).
            (0u64..100, 0u64..4, 0u64..1_000),
        ),
        0..10,
    )
}

/// Applies one report through the real wire path.
fn absorb(store: &mut FederationStore, r: &Report) {
    let ((worker, epoch, seq), (value, superstep, compute_ns)) = *r;
    let mut snap = MetricsSnapshot::default();
    snap.counters.insert("t.prop.counter".to_string(), value);
    snap.gauges.insert("t.prop.gauge".to_string(), value as f64);
    let spans = encode_spans(&[WireSpan {
        id: seq + 1,
        parent: None,
        name: "t.prop.span".to_string(),
        thread: worker as u64,
        start_ns: compute_ns,
        dur_ns: value,
        attrs: vec![("superstep".to_string(), superstep.to_string())],
    }]);
    store
        .absorb_report(
            worker,
            epoch,
            seq,
            Some((
                superstep,
                StepSample {
                    epoch,
                    compute_ns,
                    comm_ns: value,
                },
            )),
            &snap.to_bytes(),
            &spans,
        )
        .expect("absorb synthetic report");
}

fn store_from(reports: &[Report]) -> FederationStore {
    let mut store = FederationStore::default();
    for r in reports {
        absorb(&mut store, r);
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn merge_is_associative_commutative_and_idempotent(
        ra in report_strategy(),
        rb in report_strategy(),
        rc in report_strategy(),
    ) {
        let (a, b, c) = (store_from(&ra), store_from(&rb), store_from(&rc));
        let ab_c = FederationStore::merge(&FederationStore::merge(&a, &b), &c);
        let a_bc = FederationStore::merge(&a, &FederationStore::merge(&b, &c));
        prop_assert_eq!(&ab_c, &a_bc, "merge must be associative");
        prop_assert_eq!(
            FederationStore::merge(&a, &b),
            FederationStore::merge(&b, &a),
            "merge must be commutative"
        );
        prop_assert_eq!(
            FederationStore::merge(&a, &a),
            a.clone(),
            "merge must be idempotent"
        );
        // Merging a combined store back into a part is also a no-op.
        prop_assert_eq!(FederationStore::merge(&ab_c, &a_bc), ab_c);
    }

    #[test]
    fn absorb_order_and_duplicates_do_not_matter(
        reports in report_strategy(),
        rotate in 0usize..10,
        dup in 0usize..10,
    ) {
        let forward = store_from(&reports);

        // Any rotation + reversal of the delivery order converges to
        // the same store.
        let mut shuffled = reports.clone();
        if !shuffled.is_empty() {
            let k = rotate % shuffled.len();
            shuffled.rotate_left(k);
            shuffled.reverse();
        }
        prop_assert_eq!(&store_from(&shuffled), &forward, "absorb order leaked");

        // Replaying one report (a retried frame) is invisible.
        let mut with_dup = forward.clone();
        if !reports.is_empty() {
            absorb(&mut with_dup, &reports[dup % reports.len()]);
        }
        prop_assert_eq!(&with_dup, &forward, "duplicate report changed the store");
    }

    #[test]
    fn sanitised_worker_labels_never_collide(a in 0u32..5_000, b in 0u32..5_000) {
        prop_assume!(a != b);
        let (la, lb) = (
            bpart_obs::federation::worker_label(a),
            bpart_obs::federation::worker_label(b),
        );
        prop_assert_ne!(&la, &lb);
        // Label values are digit-only, so Prometheus text-format escaping
        // can never rewrite (and thereby collide) them.
        prop_assert!(la.chars().all(|c| c.is_ascii_digit()), "label {la:?}");
        prop_assert!(lb.chars().all(|c| c.is_ascii_digit()), "label {lb:?}");
        // And when a label is embedded into a per-worker series name,
        // metric-name sanitisation passes digits through unchanged, so
        // two workers still cannot end up sharing one series.
        prop_assert_ne!(
            bpart_obs::metrics::sanitize_name(&format!("dist.worker.{la}.up")),
            bpart_obs::metrics::sanitize_name(&format!("dist.worker.{lb}.up"))
        );
    }
}
