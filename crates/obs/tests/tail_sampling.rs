//! End-to-end tail-sampling tests: spans actually thinned out of the
//! tracer ring. These live in their own integration binary because the
//! sampling switch is process-global — flipping it in the crate's unit
//! tests would sample spans out from under every other test.

use bpart_obs::sampling::{
    kept, reset_tail_sampling, sampled_out, set_tail_config, set_tail_sampling_enabled, TailConfig,
};
use bpart_obs::tracer::{clear_trace, set_trace_enabled, snapshot};
use std::sync::Mutex;

/// Both tests flip the process-global sampling switch; serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn fast_repetitive_spans_thin_but_warmup_and_pins_survive() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    set_trace_enabled(true);
    clear_trace();
    reset_tail_sampling();
    set_tail_config(TailConfig {
        // An effectively-infinite slow factor isolates the downsampling
        // path: nothing gets kept for being slow.
        slow_factor: 1e12,
        keep_one_in: 8,
        warmup: 16,
    });
    set_tail_sampling_enabled(true);

    const CLOSES: usize = 516;
    for _ in 0..CLOSES {
        drop(bpart_obs::span("tail.e2e.fast"));
    }
    // Explicit pins (the fault/replay/stall call sites) beat the dice.
    const PINNED: usize = 50;
    for _ in 0..PINNED {
        let mut g = bpart_obs::span("tail.e2e.pinned");
        g.keep();
    }

    set_tail_sampling_enabled(false);

    let spans = snapshot();
    let fast = spans.iter().filter(|s| s.name == "tail.e2e.fast").count();
    let pinned = spans.iter().filter(|s| s.name == "tail.e2e.pinned").count();
    assert_eq!(pinned, PINNED, "every keep()-pinned span must be retained");
    assert!(
        fast >= 16,
        "the warmup closes are admitted unconditionally: {fast}"
    );
    // Expectation past warmup is ~1/8 admitted (500/8 ≈ 62); anything
    // close to the full count means no thinning happened.
    assert!(
        fast < CLOSES / 2,
        "fast repetitive spans must thin out of the ring: {fast}/{CLOSES}"
    );
    assert_eq!(
        kept() as usize,
        fast + pinned,
        "kept counter must match what reached the ring"
    );
    assert_eq!(
        sampled_out() as usize,
        CLOSES - fast,
        "sampled_out must account for every discarded close"
    );

    clear_trace();
    reset_tail_sampling();
    set_tail_config(TailConfig::default());
}

#[test]
fn slow_outlier_spans_always_admit() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    set_trace_enabled(true);
    clear_trace();
    reset_tail_sampling();
    set_tail_config(TailConfig {
        slow_factor: 4.0,
        // Without the slow-keep rule this would admit ~nothing.
        keep_one_in: 1_000_000,
        warmup: 16,
    });
    set_tail_sampling_enabled(true);

    // Converge the EMA onto sub-microsecond closes...
    for _ in 0..64 {
        drop(bpart_obs::span("tail.e2e.outlier"));
    }
    // ...then close escalating outliers. Each is ≥4x the EMA at its own
    // close (the EMA chases the previous outlier, so equal-duration slow
    // spans would stop qualifying — escalation keeps each one anomalous)
    // and must be admitted regardless of the draw.
    let slow_ms = [1u64, 4, 16];
    for ms in slow_ms {
        let g = bpart_obs::span("tail.e2e.outlier");
        std::thread::sleep(std::time::Duration::from_millis(ms));
        drop(g);
    }

    set_tail_sampling_enabled(false);

    let spans = snapshot();
    let slow_retained = spans
        .iter()
        .filter(|s| s.name == "tail.e2e.outlier" && s.dur_ns >= 500_000)
        .count();
    assert_eq!(
        slow_retained,
        slow_ms.len(),
        "every slow outlier must survive admission"
    );

    clear_trace();
    reset_tail_sampling();
    set_tail_config(TailConfig::default());
}
