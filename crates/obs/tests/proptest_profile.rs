//! Property-based contention test for the continuous profiler.
//!
//! This lives in an integration test (own process) because the profiler
//! is process-global: cases reset the folded table between runs, which
//! would race with the crate's parallel unit tests.
//!
//! The sampler and the span open/close path synchronise on each thread's
//! live-stack mutex, so a sample must always be a consistent prefix of
//! what the thread actually had open. The property hammers that under
//! arbitrary churn:
//!
//! 1. **No torn stacks** — every folded key is a `;`-join of real span
//!    names in valid nesting order (here: a prefix of the fixed chain
//!    each churn thread opens). A key that interleaves frames from two
//!    threads, repeats a frame, or skips a level is a torn read.
//! 2. **Conservation** — the folded counts sum to exactly the number of
//!    non-empty-stack observations the sampler recorded.

use bpart_obs::profile::{
    folded_snapshot, observation_count, reset_profile, sample_once, set_profile_enabled,
};
use bpart_obs::set_trace_enabled;
use proptest::prelude::*;
use std::sync::Mutex;

/// The nesting chain every churn thread opens, outermost first. A
/// consistent sample of any thread is a prefix of this chain.
const CHAIN: [&str; 4] = ["p.prop.d0", "p.prop.d1", "p.prop.d2", "p.prop.d3"];

/// Cases mutate the global folded table; serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn samples_are_untorn_prefixes_and_counts_balance(
        threads in 1usize..5,
        roots in 1usize..20,
        depth in 1usize..=4,
        samples in 5usize..40,
    ) {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        set_trace_enabled(true);
        set_profile_enabled(true);
        reset_profile();

        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(move || {
                    for _ in 0..roots {
                        // Open `depth` nested spans in chain order, hold
                        // briefly so the sampler can land mid-stack, then
                        // close innermost-first.
                        let mut guards = Vec::with_capacity(depth);
                        for name in CHAIN.iter().take(depth) {
                            guards.push(bpart_obs::span(name));
                        }
                        std::thread::yield_now();
                        drop(guards);
                    }
                });
            }
            // Sample concurrently with the churn from this thread (which
            // itself opens no spans, so it never contributes a stack).
            for _ in 0..samples {
                sample_once();
                std::thread::yield_now();
            }
        });
        // One final quiescent sample: closed stacks must have vanished.
        sample_once();

        let valid: Vec<String> = (1..=CHAIN.len()).map(|n| CHAIN[..n].join(";")).collect();
        let folded = folded_snapshot();
        for (key, count) in &folded {
            prop_assert!(
                valid.contains(key),
                "torn or foreign stack {key:?} (count {count}); valid prefixes: {valid:?}"
            );
            prop_assert!(*count > 0, "zero-count entry for {key:?}");
        }
        let total: u64 = folded.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(
            total,
            observation_count(),
            "folded counts must sum to the observation count"
        );

        set_profile_enabled(false);
        reset_profile();
    }
}
