//! Property-based contention test for the tracer ring buffer.
//!
//! This lives in an integration test (own process) because the tracer is
//! process-global: the property resizes the ring and clears it between
//! cases, which would race with the crate's parallel unit tests.
//!
//! The two contracts under arbitrary thread counts, span shapes, and
//! ring capacities:
//!
//! 1. **Conservation** — every closed span is either retained in the
//!    ring or counted as evicted: `recorded + dropped == closed`.
//! 2. **Thread-local nesting** — a retained child's parent (when also
//!    retained) was recorded on the same thread; parenting never leaks
//!    across concurrently tracing threads.

use bpart_obs::tracer::{
    clear_trace, dropped_spans, set_ring_capacity, set_trace_enabled, snapshot,
    DEFAULT_RING_CAPACITY,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;

/// Cases mutate the global ring; serialize them (proptest may run cases
/// from this file's single property, but the harness could still add
/// more properties later — keep the lock explicit).
static SERIAL: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_conserves_spans_and_never_misparents_across_threads(
        threads in 2usize..6,
        roots in 1usize..30,
        depth in 1usize..4,
        cap in 8usize..64,
    ) {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        set_trace_enabled(true);
        set_ring_capacity(cap);
        clear_trace();

        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..roots {
                        // `depth` nested spans, innermost closing first.
                        let mut guards = Vec::with_capacity(depth);
                        for _ in 0..depth {
                            guards.push(bpart_obs::span("t.prop.span"));
                        }
                        drop(guards);
                    }
                });
            }
        });

        let spans = snapshot();
        let closed = (threads * roots * depth) as u64;
        prop_assert_eq!(
            spans.len() as u64 + dropped_spans(),
            closed,
            "retained {} + dropped {} != closed {}",
            spans.len(),
            dropped_spans(),
            closed
        );
        prop_assert!(spans.len() <= cap, "ring exceeded capacity {}", cap);

        let by_id: HashMap<u64, &bpart_obs::SpanRecord> =
            spans.iter().map(|s| (s.id, s)).collect();
        for child in &spans {
            let Some(parent_id) = child.parent else { continue };
            // The parent may have been evicted; when retained, it must be
            // from the same thread.
            if let Some(parent) = by_id.get(&parent_id) {
                prop_assert_eq!(
                    parent.thread,
                    child.thread,
                    "span {} parented across threads ({} -> {})",
                    child.id,
                    child.thread,
                    parent.thread
                );
            }
        }

        // Restore the shared tracer for whatever runs next in-process.
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        clear_trace();
    }
}
