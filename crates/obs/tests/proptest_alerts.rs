//! Property-based hysteresis test for the alert engine.
//!
//! The contract under arbitrary condition sequences and arbitrary
//! `for`/`cooldown` durations (the module doc's promise):
//!
//! 1. **No flap within cooldown** — once a rule fires, it stays in
//!    `Firing` until at least `cooldown` has elapsed since `fired_at`;
//!    the only legal exit is to `Ok`, with the condition clear.
//! 2. **No premature fire** — entering `Firing` straight from `Ok` is
//!    only possible with a zero `for` duration, and any entry to
//!    `Firing` happens on a step whose condition held.
//! 3. **Pending is honest** — a `Pending → Ok` transition only happens
//!    when the condition observed false.
//!
//! The engine is driven directly (no global state), so cases need no
//! serialization.

use bpart_obs::alerts::{AlertEngine, Op, Phase, Rule, RuleKind};
use bpart_obs::metrics::MetricView;
use proptest::prelude::*;
use std::time::Duration;

fn values(v: f64) -> bpart_obs::alerts::MetricValues {
    bpart_obs::alerts::MetricValues::from_pairs([("x".to_string(), MetricView::Gauge(v))])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn firing_never_flaps_within_cooldown(
        for_ms in 0u64..20,
        cooldown_ms in 0u64..100,
        // Each step: does the condition hold (0/1 — the vendored
        // proptest has no bool strategy), and how much time passed
        // since the previous step (ms)?
        steps in prop::collection::vec((0u8..2, 1u64..50), 1..60),
    ) {
        const MS: u64 = 1_000_000;
        let mut engine = AlertEngine::new();
        engine.add_rule(Rule {
            name: "prop".into(),
            kind: RuleKind::Threshold {
                metric: "x".into(),
                op: Op::Gt,
                value: 10.0,
            },
            for_duration: Duration::from_millis(for_ms),
            cooldown: Duration::from_millis(cooldown_ms),
        });

        let mut now_ns = 0u64;
        let mut prev_phase = Phase::Ok;
        for &(cond, dt_ms) in &steps {
            let cond = cond == 1;
            now_ns += dt_ms * MS;
            let status = engine
                .step(&values(if cond { 20.0 } else { 5.0 }), now_ns)
                .remove(0);
            match (prev_phase, status.phase) {
                (Phase::Firing, Phase::Ok) => {
                    prop_assert!(!cond, "left Firing while the condition still held");
                    prop_assert!(
                        now_ns.saturating_sub(status.fired_at_ns) >= cooldown_ms * MS,
                        "flapped {}ns after firing, cooldown is {}ms",
                        now_ns - status.fired_at_ns,
                        cooldown_ms
                    );
                }
                (Phase::Firing, Phase::Pending) => {
                    prop_assert!(false, "Firing must exit to Ok, never to Pending");
                }
                (Phase::Ok, Phase::Firing) => {
                    prop_assert!(cond, "fired on a false condition");
                    prop_assert_eq!(
                        for_ms, 0,
                        "skipped Pending with a nonzero for-duration"
                    );
                }
                (Phase::Pending, Phase::Firing) => {
                    prop_assert!(cond, "fired on a false condition");
                }
                (Phase::Pending, Phase::Ok) => {
                    prop_assert!(!cond, "abandoned Pending while the condition held");
                }
                _ => {}
            }
            if status.phase == Phase::Firing {
                prop_assert!(
                    status.fired_at_ns <= now_ns,
                    "fired_at in the future"
                );
            }
            prev_phase = status.phase;
        }
    }
}
