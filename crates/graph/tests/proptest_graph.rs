//! Property-based tests for the graph substrate: representation
//! invariants, IO round-trips, and generator contracts hold for arbitrary
//! inputs.

use bpart_graph::{generate, io, CsrGraph, Edge, EdgeList, VertexId};
use proptest::prelude::*;

/// Strategy: a small arbitrary edge set over up to 64 vertices.
fn arb_edges() -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0u32..64, 0u32..64), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_preserves_edge_multiset(edges in arb_edges()) {
        let n = 64;
        let g = CsrGraph::from_edges(n, &edges);
        prop_assert_eq!(g.num_edges(), edges.len());
        let mut expect = edges.clone();
        expect.sort_unstable();
        let mut got: Vec<Edge> = g.edges().collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn in_and_out_degrees_are_consistent(edges in arb_edges()) {
        let g = CsrGraph::from_edges(64, &edges);
        let out_total: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_total: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_total, g.num_edges());
        prop_assert_eq!(in_total, g.num_edges());
        // transpose swaps the degree roles exactly
        let t = g.transpose();
        for v in g.vertices() {
            prop_assert_eq!(g.out_degree(v), t.in_degree(v));
            prop_assert_eq!(g.in_degree(v), t.out_degree(v));
        }
    }

    #[test]
    fn adjacency_is_sorted_and_binary_searchable(edges in arb_edges()) {
        let g = CsrGraph::from_edges(64, &edges);
        for u in g.vertices() {
            let nbrs = g.out_neighbors(u);
            for w in nbrs.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            for &v in nbrs {
                prop_assert!(g.is_out_neighbor(u, v));
            }
        }
    }

    #[test]
    fn text_io_round_trips(edges in arb_edges()) {
        let g = CsrGraph::from_edges(64, &edges);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let back = io::read_edge_list(buf.as_slice()).unwrap();
        // Text loses trailing isolated vertices (implicit universe), so
        // compare edges and rebuild at the original size.
        let g2 = CsrGraph::from_edges(64, back.edges());
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn binary_io_round_trips_exactly(edges in arb_edges()) {
        let g = CsrGraph::from_edges(64, &edges);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let g2 = io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn bytes_parser_matches_streaming_reader(edges in arb_edges()) {
        // The zero-copy byte parser and the owned-read loader must agree
        // bit-for-bit on every well-formed file.
        let g = CsrGraph::from_edges(64, &edges);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let via_bytes = io::read_binary_bytes(&buf).unwrap();
        let via_reader = io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(&via_bytes, &via_reader);
        prop_assert_eq!(via_bytes, g);
    }

    #[test]
    fn truncated_binary_files_are_rejected(edges in arb_edges(), cut_seed in 0u64..10_000) {
        // Any strict prefix of a binary file is missing declared data and
        // must fail cleanly (never panic, never OOM, never half-parse).
        let g = CsrGraph::from_edges(64, &edges);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let cut = (cut_seed as usize) % buf.len();
        prop_assert!(io::read_binary_bytes(&buf[..cut]).is_err(), "prefix of {cut} bytes parsed");
    }

    #[test]
    fn corrupt_binary_headers_are_rejected(edges in arb_edges(), byte in 0usize..8, bit in 0usize..8) {
        // Flipping any bit of the magic or version fields must be caught
        // by header validation on both load paths.
        let g = CsrGraph::from_edges(64, &edges);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        buf[byte] ^= 1 << bit;
        prop_assert!(io::read_binary_bytes(&buf).is_err());
        prop_assert!(io::read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn symmetrize_makes_every_edge_bidirectional(edges in arb_edges()) {
        let mut el: EdgeList = edges.into_iter().collect();
        el.remove_self_loops();
        el.symmetrize();
        let g = el.into_csr();
        for (u, v) in g.edges() {
            prop_assert!(g.is_out_neighbor(v, u), "missing reverse of ({u}, {v})");
        }
    }

    #[test]
    fn erdos_renyi_honors_exact_counts(n in 2usize..64, seed in 0u64..500) {
        let cap = n * (n - 1);
        let m = cap / 2;
        let g = generate::erdos_renyi(n, m, seed);
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert_eq!(g.num_edges(), m);
        for u in g.vertices() {
            prop_assert!(!g.out_neighbors(u).contains(&u), "self loop at {u}");
        }
    }

    #[test]
    fn degree_sum_equals_partition_of_vertices(edges in arb_edges(), split in 1u32..63) {
        let g = CsrGraph::from_edges(64, &edges);
        let low: Vec<VertexId> = (0..split).collect();
        let high: Vec<VertexId> = (split..64).collect();
        prop_assert_eq!(
            g.degree_sum(low) + g.degree_sum(high),
            g.num_edges() as u64
        );
    }

    #[test]
    fn alias_table_never_returns_out_of_range(weights in prop::collection::vec(0.0f64..10.0, 1..40), seed in 0u64..100) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = bpart_graph::alias::AliasTable::new(&weights);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = t.sample(&mut rng) as usize;
            prop_assert!(x < weights.len());
            prop_assert!(weights[x] > 0.0, "sampled zero-weight outcome {x}");
        }
    }
}
