//! # bpart-graph — graph substrate for the BPart reproduction
//!
//! This crate provides everything the partitioners and engines need from a
//! graph library:
//!
//! * [`CsrGraph`] — a compact, immutable compressed-sparse-row graph with
//!   both out- and in-adjacency, the workhorse representation,
//! * [`EdgeList`] and [`GraphBuilder`] — mutable staging containers used to
//!   assemble graphs from generators or files,
//! * [`generate`] — seeded synthetic generators (Chung-Lu power-law, R-MAT,
//!   Barabási–Albert, Erdős–Rényi and small deterministic shapes) plus the
//!   `*_like` dataset presets standing in for the paper's LiveJournal /
//!   Twitter / Friendster graphs,
//! * [`io`] — text edge-list and binary serialization,
//! * [`stats`] — degree statistics (histogram, skew, power-law exponent),
//! * [`traversal`] — BFS, connected components and reachability helpers.
//!
//! The representation follows the conventions of Gemini and KnightKing, the
//! two systems the paper integrates BPart into: the graph is **directed**,
//! each vertex *owns* its out-edges, and undirected graphs are stored
//! symmetrized (each undirected edge appears in both directions).
//!
//! ## Example
//!
//! ```
//! use bpart_graph::{generate, CsrGraph};
//!
//! let g: CsrGraph = generate::erdos_renyi(1_000, 8_000, 42);
//! assert_eq!(g.num_vertices(), 1_000);
//! assert_eq!(g.num_edges(), 8_000);
//! let d = g.average_degree();
//! assert!((d - 8.0).abs() < 1e-9);
//! ```

pub mod alias;
pub mod builder;
pub mod csr;
pub mod edgelist;
pub mod generate;
pub mod io;
pub mod stats;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use edgelist::EdgeList;

/// Vertex identifier.
///
/// `u32` keeps adjacency arrays half the size of `usize` on 64-bit targets
/// (see the perf-book guidance on smaller integers); four billion vertices
/// is far beyond the laptop-scale graphs this reproduction targets.
pub type VertexId = u32;

/// A directed edge `(source, target)`.
pub type Edge = (VertexId, VertexId);

/// Errors produced by graph construction and IO.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id `>= num_vertices`.
    VertexOutOfRange {
        vertex: VertexId,
        num_vertices: usize,
    },
    /// Binary/text decode failure with a human-readable reason.
    Format(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "vertex {vertex} out of range (graph has {num_vertices} vertices)"
                )
            }
            GraphError::Format(msg) => write!(f, "malformed graph data: {msg}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_formats() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("vertex 9"));
        let e = GraphError::Format("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }
}
