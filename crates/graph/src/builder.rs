//! Fluent graph construction helper.
//!
//! [`GraphBuilder`] wraps [`EdgeList`] with a builder-style
//! API and one-shot normalization flags, so call sites can express their
//! whole construction pipeline in a single chain:
//!
//! ```
//! use bpart_graph::GraphBuilder;
//!
//! let g = GraphBuilder::new(4)
//!     .edge(0, 1)
//!     .edge(1, 2)
//!     .edge(2, 2) // self loop, dropped below
//!     .edge(1, 2) // duplicate, dropped below
//!     .drop_self_loops()
//!     .dedup()
//!     .symmetric()
//!     .build();
//! assert_eq!(g.num_edges(), 4); // 0<->1, 1<->2
//! ```

use crate::{CsrGraph, Edge, EdgeList, VertexId};

/// Builder for [`CsrGraph`] with optional normalization passes.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: EdgeList,
    drop_self_loops: bool,
    dedup: bool,
    symmetric: bool,
}

impl GraphBuilder {
    /// Starts a builder over `num_vertices` vertices (the universe still
    /// grows automatically if a larger id is pushed).
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            edges: EdgeList::new(num_vertices),
            ..Default::default()
        }
    }

    /// Starts a builder with edge capacity pre-reserved.
    pub fn with_capacity(num_vertices: usize, cap: usize) -> Self {
        GraphBuilder {
            edges: EdgeList::with_capacity(num_vertices, cap),
            ..Default::default()
        }
    }

    /// Adds a directed edge.
    #[must_use]
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.edges.push(u, v);
        self
    }

    /// Adds every edge from the iterator.
    #[must_use]
    pub fn edges<I: IntoIterator<Item = Edge>>(mut self, iter: I) -> Self {
        self.edges.extend(iter);
        self
    }

    /// Remove self-loops at build time.
    #[must_use]
    pub fn drop_self_loops(mut self) -> Self {
        self.drop_self_loops = true;
        self
    }

    /// Deduplicate directed edges at build time.
    #[must_use]
    pub fn dedup(mut self) -> Self {
        self.dedup = true;
        self
    }

    /// Symmetrize (store each edge in both directions) at build time.
    /// Implies deduplication.
    #[must_use]
    pub fn symmetric(mut self) -> Self {
        self.symmetric = true;
        self
    }

    /// Runs the selected normalization passes and freezes to CSR.
    pub fn build(mut self) -> CsrGraph {
        if self.drop_self_loops {
            self.edges.remove_self_loops();
        }
        if self.symmetric {
            self.edges.symmetrize();
        } else if self.dedup {
            self.edges.dedup();
        }
        self.edges.into_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_build_keeps_everything() {
        let g = GraphBuilder::new(3)
            .edge(0, 0)
            .edge(0, 1)
            .edge(0, 1)
            .build();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn normalization_passes_compose() {
        let g = GraphBuilder::new(3)
            .edges([(0, 0), (0, 1), (0, 1), (1, 2)])
            .drop_self_loops()
            .dedup()
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn symmetric_implies_dedup() {
        let g = GraphBuilder::new(2)
            .edges([(0, 1), (1, 0), (0, 1)])
            .symmetric()
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn with_capacity_builds_same_graph() {
        let a = GraphBuilder::new(3).edge(1, 2).build();
        let b = GraphBuilder::with_capacity(3, 16).edge(1, 2).build();
        assert_eq!(a, b);
    }
}
