//! Compressed-sparse-row graph representation.
//!
//! [`CsrGraph`] is the immutable, cache-friendly representation every other
//! crate operates on. It stores the out-adjacency in CSR form and, because
//! the partition-quality metrics and the Fennel/BPart scoring functions need
//! *undirected* neighborhoods, it also materializes the in-adjacency.
//!
//! Adjacency lists are sorted ascending, which gives deterministic iteration
//! order and lets node2vec test `is_out_neighbor` with a binary search.

use crate::{Edge, VertexId};

/// An immutable directed graph in compressed-sparse-row form.
///
/// Out-edges of vertex `v` occupy `targets[offsets[v] .. offsets[v + 1]]`;
/// the in-adjacency (`in_offsets` / `in_targets`) is the transpose built at
/// construction time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    in_offsets: Vec<u64>,
    in_targets: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph with `num_vertices` vertices from a list of directed
    /// edges. Edges may arrive in any order; they are counting-sorted by
    /// source, and each adjacency list is sorted ascending. Duplicate edges
    /// are preserved (generators deduplicate before reaching here).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        let (offsets, targets) = Self::csr_of(num_vertices, edges.iter().map(|&(u, v)| (u, v)));
        let (in_offsets, in_targets) =
            Self::csr_of(num_vertices, edges.iter().map(|&(u, v)| (v, u)));
        CsrGraph {
            offsets,
            targets,
            in_offsets,
            in_targets,
        }
    }

    /// Builds a graph directly from already-valid CSR arrays, deriving the
    /// in-adjacency with a single counting-sort pass — the fast path the
    /// binary loader takes after validating a file's bytes, skipping the
    /// edge-list materialization and re-sort [`from_edges`] would do.
    ///
    /// Callers must have established exactly the invariants `from_edges`
    /// produces: `offsets` monotone with `offsets[0] == 0` and
    /// `offsets[n] == targets.len()`, every target `< n`, and every
    /// adjacency list sorted ascending. Debug builds re-check.
    pub(crate) fn from_sorted_csr(offsets: Vec<u64>, targets: Vec<VertexId>) -> Self {
        let n = offsets.len() - 1;
        debug_assert_eq!(offsets.first(), Some(&0));
        debug_assert_eq!(offsets.last(), Some(&(targets.len() as u64)));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(targets.iter().all(|&t| (t as usize) < n));
        debug_assert!(
            (0..n).all(|v| targets[offsets[v] as usize..offsets[v + 1] as usize]
                .windows(2)
                .all(|w| w[0] <= w[1]))
        );
        // Transpose by counting sort. Scanning sources in ascending order
        // appends each in-list's sources in ascending order, so the
        // in-lists come out sorted without a per-list sort.
        let mut in_offsets = vec![0u64; n + 1];
        for &t in &targets {
            in_offsets[t as usize + 1] += 1;
        }
        for v in 0..n {
            in_offsets[v + 1] += in_offsets[v];
        }
        let mut cursor = in_offsets[..n].to_vec();
        let mut in_targets = vec![0 as VertexId; targets.len()];
        for u in 0..n {
            for &t in &targets[offsets[u] as usize..offsets[u + 1] as usize] {
                let c = &mut cursor[t as usize];
                in_targets[*c as usize] = u as VertexId;
                *c += 1;
            }
        }
        CsrGraph {
            offsets,
            targets,
            in_offsets,
            in_targets,
        }
    }

    /// Counting-sort pass shared by the forward and transposed adjacency.
    fn csr_of(
        num_vertices: usize,
        edges: impl Iterator<Item = Edge> + Clone,
    ) -> (Vec<u64>, Vec<VertexId>) {
        let mut degree = vec![0u64; num_vertices];
        let mut num_edges = 0usize;
        for (u, v) in edges.clone() {
            assert!(
                (u as usize) < num_vertices && (v as usize) < num_vertices,
                "edge ({u}, {v}) out of range for {num_vertices} vertices"
            );
            degree[u as usize] += 1;
            num_edges += 1;
        }
        let mut offsets = vec![0u64; num_vertices + 1];
        for v in 0..num_vertices {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets[..num_vertices].to_vec();
        let mut targets = vec![0 as VertexId; num_edges];
        for (u, v) in edges {
            let c = &mut cursor[u as usize];
            targets[*c as usize] = v;
            *c += 1;
        }
        // Sort each adjacency list for determinism and binary-searchability.
        for v in 0..num_vertices {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        (offsets, targets)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Average out-degree `m / n`; zero on an empty graph.
    #[inline]
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Out-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        );
        &self.targets[lo..hi]
    }

    /// In-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = (
            self.in_offsets[v as usize] as usize,
            self.in_offsets[v as usize + 1] as usize,
        );
        &self.in_targets[lo..hi]
    }

    /// True iff the directed edge `(u, v)` exists (binary search).
    #[inline]
    pub fn is_out_neighbor(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all directed edges in `(source, sorted-target)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices()
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Raw offset array (length `n + 1`), for zero-copy serialization.
    #[inline]
    pub fn raw_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw target array (length `m`), for zero-copy serialization.
    #[inline]
    pub fn raw_targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Maximum out-degree over all vertices (zero on an empty graph).
    pub fn max_out_degree(&self) -> usize {
        self.vertices()
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Returns the transpose as a new graph (out becomes in and vice versa).
    ///
    /// Cheap: both directions are already materialized, so this just swaps
    /// the internal arrays.
    pub fn transpose(&self) -> CsrGraph {
        CsrGraph {
            offsets: self.in_offsets.clone(),
            targets: self.in_targets.clone(),
            in_offsets: self.offsets.clone(),
            in_targets: self.targets.clone(),
        }
    }

    /// Sum of out-degrees over an arbitrary set of vertices.
    ///
    /// This is the `|E_i|` used throughout the paper: each vertex owns its
    /// out-edges, so a vertex set's edge mass is its out-degree sum.
    pub fn degree_sum<I: IntoIterator<Item = VertexId>>(&self, vertices: I) -> u64 {
        vertices
            .into_iter()
            .map(|v| self.out_degree(v) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.average_degree(), 1.0);
    }

    #[test]
    fn adjacency_is_sorted_regardless_of_insert_order() {
        let g = CsrGraph::from_edges(4, &[(0, 3), (0, 1), (0, 2)]);
        assert_eq!(g.out_neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.max_out_degree(), 2);
    }

    #[test]
    fn in_neighbors_are_the_transpose() {
        let g = diamond();
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(1), &[0]);
        assert!(g.in_neighbors(0).is_empty());
    }

    #[test]
    fn is_out_neighbor_binary_search() {
        let g = diamond();
        assert!(g.is_out_neighbor(0, 1));
        assert!(g.is_out_neighbor(0, 2));
        assert!(!g.is_out_neighbor(0, 3));
        assert!(!g.is_out_neighbor(3, 0));
    }

    #[test]
    fn edges_iterator_yields_all_edges_sorted_by_source() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn transpose_swaps_directions() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.out_neighbors(3), &[1, 2]);
        assert_eq!(t.in_neighbors(1), &[3]);
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn degree_sum_counts_out_edges() {
        let g = diamond();
        assert_eq!(g.degree_sum([0, 1]), 3);
        assert_eq!(g.degree_sum(g.vertices()), 4);
        assert_eq!(g.degree_sum([3]), 0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_out_degree(), 0);
    }

    #[test]
    fn duplicate_edges_are_preserved() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CsrGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn from_sorted_csr_matches_from_edges() {
        let g = crate::generate::erdos_renyi(200, 1_500, 42);
        let fast = CsrGraph::from_sorted_csr(g.raw_offsets().to_vec(), g.raw_targets().to_vec());
        assert_eq!(fast, g);
    }

    #[test]
    fn from_sorted_csr_keeps_duplicate_edges() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 1), (2, 1)]);
        let fast = CsrGraph::from_sorted_csr(g.raw_offsets().to_vec(), g.raw_targets().to_vec());
        assert_eq!(fast, g);
        assert_eq!(fast.in_neighbors(1), &[0, 0, 2]);
    }
}
