//! Degree statistics.
//!
//! The paper's whole premise rests on scale-free degree distributions
//! (§3.1), so the harness reports the skew of every generated dataset via
//! these helpers: degree histogram, Gini coefficient of the degree mass,
//! and the Clauset-style maximum-likelihood power-law exponent.

use crate::CsrGraph;
use rayon::prelude::*;

/// Summary of a graph's out-degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Average out-degree.
    pub average: f64,
    /// Maximum out-degree.
    pub max: usize,
    /// Share of edge mass owned by the top 1% of vertices by degree.
    pub top1pct_mass: f64,
    /// Gini coefficient of the out-degree distribution (0 = uniform).
    pub gini: f64,
    /// MLE power-law exponent fitted on degrees `>= x_min` (None when the
    /// graph is too small or degenerate to fit).
    pub powerlaw_alpha: Option<f64>,
}

/// Computes [`DegreeStats`] for a graph.
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let n = graph.num_vertices();
    let mut degrees: Vec<usize> = (0..n)
        .into_par_iter()
        .map(|v| graph.out_degree(v as u32))
        .collect();
    degrees.par_sort_unstable();
    let edges = graph.num_edges();
    let max = degrees.last().copied().unwrap_or(0);
    let top = (n / 100).max(1).min(n.max(1));
    let top1pct_mass = if edges == 0 {
        0.0
    } else {
        degrees.iter().rev().take(top).sum::<usize>() as f64 / edges as f64
    };
    DegreeStats {
        vertices: n,
        edges,
        average: graph.average_degree(),
        max,
        top1pct_mass,
        gini: gini(&degrees),
        powerlaw_alpha: powerlaw_alpha(&degrees),
    }
}

/// Gini coefficient of a sorted (ascending) non-negative sample.
/// Returns 0 for empty or all-zero samples.
fn gini(sorted: &[usize]) -> f64 {
    let n = sorted.len();
    let total: f64 = sorted.iter().map(|&d| d as f64).sum();
    if n == 0 || total == 0.0 {
        return 0.0;
    }
    // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, with 1-based i over
    // ascending order.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Continuous MLE power-law exponent `alpha = 1 + k / sum(ln(d / x_min))`
/// over degrees `>= x_min` with `x_min` fixed at the degree median
/// (cheap, adequate for reporting skew).
fn powerlaw_alpha(sorted: &[usize]) -> Option<f64> {
    let positive: Vec<usize> = sorted.iter().copied().filter(|&d| d > 0).collect();
    if positive.len() < 16 {
        return None;
    }
    let x_min = positive[positive.len() / 2].max(1) as f64;
    let tail: Vec<f64> = positive
        .iter()
        .filter(|&&d| d as f64 >= x_min)
        .map(|&d| d as f64)
        .collect();
    if tail.len() < 8 {
        return None;
    }
    let log_sum: f64 = tail.iter().map(|&d| (d / x_min).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / log_sum)
}

/// Sampled local clustering coefficient over the undirected view.
///
/// For `samples` seeded random vertices with at least two (undirected)
/// neighbors, tests `trials` random neighbor pairs for adjacency and
/// returns the closed-triangle fraction. Community-structured graphs (and
/// low-rewire Watts-Strogatz) score high; Chung-Lu and Erdős–Rényi score
/// near `d̄/n`.
pub fn approx_clustering_coefficient(
    graph: &CsrGraph,
    samples: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let adjacent = |a: crate::VertexId, b: crate::VertexId| {
        graph.is_out_neighbor(a, b) || graph.is_out_neighbor(b, a)
    };
    let mut closed = 0u64;
    let mut tested = 0u64;
    let mut nbrs: Vec<crate::VertexId> = Vec::new();
    for _ in 0..samples {
        let v = rng.random_range(0..n) as crate::VertexId;
        nbrs.clear();
        nbrs.extend_from_slice(graph.out_neighbors(v));
        nbrs.extend_from_slice(graph.in_neighbors(v));
        nbrs.sort_unstable();
        nbrs.dedup();
        if nbrs.len() < 2 {
            continue;
        }
        for _ in 0..trials {
            let a = nbrs[rng.random_range(0..nbrs.len())];
            let b = nbrs[rng.random_range(0..nbrs.len())];
            if a == b {
                continue;
            }
            tested += 1;
            if adjacent(a, b) {
                closed += 1;
            }
        }
    }
    if tested == 0 {
        0.0
    } else {
        closed as f64 / tested as f64
    }
}

/// Degree histogram with logarithmic (powers-of-two) buckets:
/// `buckets[i]` counts vertices with out-degree in `[2^i, 2^(i+1))`;
/// the zero-degree count is returned separately.
pub fn log_degree_histogram(graph: &CsrGraph) -> (usize, Vec<usize>) {
    let mut zero = 0usize;
    let mut buckets: Vec<usize> = Vec::new();
    for v in graph.vertices() {
        let d = graph.out_degree(v);
        if d == 0 {
            zero += 1;
            continue;
        }
        let b = (usize::BITS - 1 - d.leading_zeros()) as usize;
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    (zero, buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn uniform_graph_has_low_gini() {
        let g = generate::ring(100);
        let s = degree_stats(&g);
        assert_eq!(s.max, 1);
        assert!(s.gini.abs() < 1e-9);
        assert_eq!(s.average, 1.0);
    }

    #[test]
    fn star_is_maximally_skewed() {
        let g = generate::star(99);
        let s = degree_stats(&g);
        assert_eq!(s.max, 99);
        assert!(s.gini > 0.45, "gini = {}", s.gini);
        assert!(s.top1pct_mass > 0.49);
    }

    #[test]
    fn powerlaw_alpha_detects_skew() {
        let p = generate::twitter_like();
        let g = p.generate_scaled(0.05);
        let s = degree_stats(&g);
        let alpha = s.powerlaw_alpha.expect("should fit");
        assert!(alpha > 1.2 && alpha < 4.5, "alpha = {alpha}");
        assert!(s.top1pct_mass > 0.05, "top1pct = {}", s.top1pct_mass);
    }

    #[test]
    fn histogram_buckets_sum_to_n() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let (zero, buckets) = log_degree_histogram(&g);
        assert_eq!(zero + buckets.iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::CsrGraph::from_edges(0, &[]);
        let s = degree_stats(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.gini, 0.0);
        assert!(s.powerlaw_alpha.is_none());
    }

    #[test]
    fn clustering_coefficient_extremes() {
        // Complete graph: every neighbor pair is adjacent.
        let c = approx_clustering_coefficient(&generate::complete(12), 50, 20, 1);
        assert!((c - 1.0).abs() < 1e-9, "complete c = {c}");
        // Ring: neighbors of a vertex are never adjacent to each other.
        let c = approx_clustering_coefficient(&generate::grid(1, 50), 50, 20, 1);
        assert!(c < 0.05, "path c = {c}");
        // Empty graph is defined as zero.
        assert_eq!(
            approx_clustering_coefficient(&CsrGraph::from_edges(0, &[]), 10, 10, 1),
            0.0
        );
    }

    #[test]
    fn community_structure_raises_clustering() {
        let with = generate::twitter_like().generate_scaled(0.05);
        let mut plain = bpart_graph_test_preset();
        plain.locality = 0.0;
        plain.community = 0.0;
        let without = plain.generate_scaled(0.05);
        let c_with = approx_clustering_coefficient(&with, 400, 30, 7);
        let c_without = approx_clustering_coefficient(&without, 400, 30, 7);
        assert!(
            c_with > c_without * 2.0,
            "community graphs should cluster more: {c_with} vs {c_without}"
        );
    }

    fn bpart_graph_test_preset() -> generate::DatasetPreset {
        generate::twitter_like()
    }

    #[test]
    fn gini_of_two_level_sample() {
        // Half zeros, half ones → known Gini of 0.5.
        let sample: Vec<usize> = [vec![0usize; 50], vec![1usize; 50]].concat();
        assert!(
            (gini(&sample) - 0.5).abs() < 0.02,
            "gini = {}",
            gini(&sample)
        );
    }
}
