//! Graph traversals: BFS and connected components.
//!
//! Used by the §3.3 connectivity experiment (are combined BPart pieces still
//! connected?) and as the single-machine reference implementation the
//! distributed engines are tested against.

use crate::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// BFS distances (in hops, over out-edges) from `source`; unreachable
/// vertices get `u32::MAX`.
pub fn bfs_distances(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in graph.out_neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Weakly connected component labels (edges treated as undirected): each
/// vertex is labelled with the smallest vertex id in its component — the
/// same convention the distributed CC app converges to, so results compare
/// directly.
pub fn connected_components(graph: &CsrGraph) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut label = vec![VertexId::MAX; n];
    let mut queue = VecDeque::new();
    for start in 0..n as VertexId {
        if label[start as usize] != VertexId::MAX {
            continue;
        }
        label[start as usize] = start;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in graph.out_neighbors(u).iter().chain(graph.in_neighbors(u)) {
                if label[v as usize] == VertexId::MAX {
                    label[v as usize] = start;
                    queue.push_back(v);
                }
            }
        }
    }
    label
}

/// Number of weakly connected components.
pub fn num_components(graph: &CsrGraph) -> usize {
    let labels = connected_components(graph);
    let mut distinct = labels;
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len()
}

/// True when the graph is weakly connected (or empty).
pub fn is_connected(graph: &CsrGraph) -> bool {
    graph.num_vertices() == 0 || num_components(graph) == 1
}

/// Extracts the subgraph induced by `vertices` with ids *relabelled* densely
/// in the order given. Returns the subgraph and the old-id vector
/// (new id -> old id).
pub fn induced_subgraph(graph: &CsrGraph, vertices: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
    let n = graph.num_vertices();
    let mut new_id = vec![VertexId::MAX; n];
    for (i, &v) in vertices.iter().enumerate() {
        assert!((v as usize) < n, "vertex {v} out of range");
        assert!(new_id[v as usize] == VertexId::MAX, "duplicate vertex {v}");
        new_id[v as usize] = i as VertexId;
    }
    let mut edges = Vec::new();
    for &u in vertices {
        for &v in graph.out_neighbors(u) {
            if new_id[v as usize] != VertexId::MAX {
                edges.push((new_id[u as usize], new_id[v as usize]));
            }
        }
    }
    (
        CsrGraph::from_edges(vertices.len(), &edges),
        vertices.to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn bfs_on_a_path() {
        let g = generate::path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        // path is directed; nothing is reachable backwards from the last vertex
        let d4 = bfs_distances(&g, 4);
        assert_eq!(d4[4], 0);
        assert!(d4[..4].iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn components_of_disjoint_rings() {
        let mut edges = Vec::new();
        // ring 0-1-2, ring 3-4-5
        for &(a, b) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            edges.push((a, b));
        }
        let g = CsrGraph::from_edges(6, &edges);
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3]);
        assert_eq!(num_components(&g), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn weak_connectivity_ignores_direction() {
        // 0 -> 1 <- 2: weakly connected even though not strongly.
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 1)]);
        assert!(is_connected(&g));
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = generate::complete(4);
        let (sub, old) = induced_subgraph(&g, &[3, 1]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 2); // 3<->1 both directions
        assert_eq!(old, vec![3, 1]);
        assert_eq!(sub.out_neighbors(0), &[1]);
    }

    #[test]
    fn induced_subgraph_drops_external_edges() {
        let g = generate::path(4); // 0->1->2->3
        let (sub, _) = induced_subgraph(&g, &[0, 2]);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    fn generated_graphs_are_mostly_connected() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let total = g.num_vertices();
        let labels = connected_components(&g);
        let mut counts = std::collections::HashMap::new();
        for l in labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        let largest = counts.values().copied().max().unwrap();
        assert!(
            largest as f64 > total as f64 * 0.5,
            "largest component {largest}/{total}"
        );
    }
}
