//! Watts–Strogatz small-world graphs.
//!
//! Start from a ring lattice where each vertex connects to its `k/2`
//! nearest neighbors on each side, then rewire each edge's target with
//! probability `beta` to a uniform random vertex. Low `beta` gives high
//! clustering and pure id-locality (contiguous chunking's best case);
//! high `beta` approaches Erdős–Rényi — a useful contrast workload for
//! partitioner benchmarks.

use crate::{CsrGraph, Edge, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a directed Watts–Strogatz graph: `n` vertices, each with `k`
/// out-edges (k even), rewiring probability `beta`.
///
/// # Panics
///
/// Panics unless `k` is even, `0 < k < n`, and `beta` is a probability.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k % 2 == 0, "k must be even (k/2 neighbors per side)");
    assert!(k > 0 && k < n, "need 0 < k < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(n * k);
    for u in 0..n as VertexId {
        for d in 1..=(k / 2) as VertexId {
            for target in [
                (u + d) % n as VertexId,
                (u + n as VertexId - d) % n as VertexId,
            ] {
                let v = if rng.random::<f64>() < beta {
                    // Rewire: uniform target, avoiding self-loops.
                    loop {
                        let w = rng.random_range(0..n) as VertexId;
                        if w != u {
                            break w;
                        }
                    }
                } else {
                    target
                };
                edges.push((u, v));
            }
        }
    }
    // Rewiring can create duplicates; deduplicate for a simple graph.
    edges.sort_unstable();
    edges.dedup();
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_beta_is_a_pure_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.num_edges(), 20 * 4);
        assert_eq!(g.out_neighbors(0), &[1, 2, 18, 19]);
        assert_eq!(g.out_neighbors(10), &[8, 9, 11, 12]);
    }

    #[test]
    fn full_rewire_destroys_locality() {
        let g = watts_strogatz(500, 6, 1.0, 7);
        // Count neighbors within lattice distance 3.
        let near = g
            .edges()
            .filter(|&(u, v)| {
                let d = (u as i64 - v as i64).rem_euclid(500);
                d.min(500 - d) <= 3
            })
            .count() as f64;
        let frac = near / g.num_edges() as f64;
        assert!(frac < 0.05, "near fraction {frac} too high for beta = 1");
    }

    #[test]
    fn partial_rewire_keeps_most_lattice_edges() {
        let g = watts_strogatz(500, 6, 0.1, 7);
        let near = g
            .edges()
            .filter(|&(u, v)| {
                let d = (u as i64 - v as i64).rem_euclid(500);
                d.min(500 - d) <= 3
            })
            .count() as f64;
        let frac = near / g.num_edges() as f64;
        assert!(frac > 0.85, "near fraction {frac} too low for beta = 0.1");
    }

    #[test]
    fn deterministic_and_loop_free() {
        let a = watts_strogatz(100, 4, 0.3, 9);
        assert_eq!(a, watts_strogatz(100, 4, 0.3, 9));
        assert_ne!(a, watts_strogatz(100, 4, 0.3, 10));
        for u in a.vertices() {
            assert!(!a.out_neighbors(u).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_panics() {
        watts_strogatz(10, 3, 0.1, 1);
    }
}
