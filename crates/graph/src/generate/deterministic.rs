//! Tiny deterministic graph shapes used throughout the unit tests.

use crate::{CsrGraph, Edge, VertexId};

/// Directed ring: `0 -> 1 -> ... -> n-1 -> 0`.
pub fn ring(n: usize) -> CsrGraph {
    assert!(n >= 2, "ring needs at least two vertices");
    let edges: Vec<Edge> = (0..n as VertexId)
        .map(|v| (v, (v + 1) % n as VertexId))
        .collect();
    CsrGraph::from_edges(n, &edges)
}

/// Directed path: `0 -> 1 -> ... -> n-1`.
pub fn path(n: usize) -> CsrGraph {
    assert!(n >= 1, "path needs at least one vertex");
    let edges: Vec<Edge> = (0..n.saturating_sub(1) as VertexId)
        .map(|v| (v, v + 1))
        .collect();
    CsrGraph::from_edges(n, &edges)
}

/// Star with hub 0: bidirectional edges `0 <-> i` for every spoke `i`.
pub fn star(spokes: usize) -> CsrGraph {
    let n = spokes + 1;
    let mut edges = Vec::with_capacity(2 * spokes);
    for i in 1..n as VertexId {
        edges.push((0, i));
        edges.push((i, 0));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Complete directed graph on `n` vertices (no self loops).
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1));
    for u in 0..n as VertexId {
        for v in 0..n as VertexId {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Bidirectional 4-neighbor grid of `rows x cols` vertices; vertex ids are
/// row-major.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
                edges.push((id(r, c + 1), id(r, c)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
                edges.push((id(r + 1, c), id(r, c)));
            }
        }
    }
    CsrGraph::from_edges(rows * cols, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape() {
        let g = ring(5);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_neighbors(4), &[0]);
        assert_eq!(g.in_degree(0), 1);
    }

    #[test]
    fn path_shape() {
        let g = path(4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(3), 0);
        let g1 = path(1);
        assert_eq!(g1.num_edges(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.out_degree(0), 6);
        assert_eq!(g.in_degree(0), 6);
        assert_eq!(g.out_degree(3), 1);
    }

    #[test]
    fn complete_shape() {
        let g = complete(4);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.out_degree(2), 3);
    }

    #[test]
    fn grid_shape() {
        let g = grid(2, 3);
        assert_eq!(g.num_vertices(), 6);
        // internal horizontal edges: 2 rows * 2 = 4; vertical: 3; each bidirectional
        assert_eq!(g.num_edges(), 2 * (4 + 3));
        // corner (0,0) has 2 neighbors
        assert_eq!(g.out_degree(0), 2);
    }
}
