//! Seeded synthetic graph generators.
//!
//! The paper evaluates on LiveJournal, Twitter and Friendster — multi-GB
//! public crawls we substitute with seeded synthetic graphs whose *shape*
//! (power-law degree skew, average degree, hub locality in the ID space)
//! drives every phenomenon the paper measures. See DESIGN.md §3 for the
//! substitution argument.
//!
//! All generators are deterministic given their seed.
//!
//! * [`chung_lu`] — power-law random graph with controllable exponent,
//!   average degree and maximum hub degree (used by the dataset presets),
//! * [`rmat`] — Kronecker-style recursive matrix generator,
//! * [`barabasi_albert`] — preferential attachment,
//! * [`erdos_renyi`] — uniform `G(n, m)`,
//! * [`watts_strogatz`] — small-world ring lattice with rewiring,
//! * deterministic shapes — ring, star, path, grid, complete — for unit
//!   tests,
//! * presets — the [`lj_like`] / [`twitter_like`] / [`friendster_like`]
//!   stand-ins with paper-matched average degrees.

mod barabasi_albert;
mod chung_lu;
mod deterministic;
mod erdos_renyi;
mod presets;
mod rmat;
mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use chung_lu::{chung_lu, ChungLuConfig};
pub use deterministic::{complete, grid, path, ring, star};
pub use erdos_renyi::erdos_renyi;
pub use presets::{friendster_like, lj_like, twitter_like, DatasetPreset, ALL_PRESETS};
pub use rmat::{rmat, RmatConfig};
pub use watts_strogatz::watts_strogatz;

use crate::Edge;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deduplicates a batch of directed edges and drops self-loops, preserving
/// determinism (sort + dedup).
pub(crate) fn normalize(edges: &mut Vec<Edge>) {
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
}

/// Keeps exactly `m` edges from a deduplicated pool by a seeded partial
/// Fisher-Yates shuffle, so truncation does not bias toward low vertex ids.
pub(crate) fn sample_exactly(edges: &mut Vec<Edge>, m: usize, seed: u64) {
    if edges.len() <= m {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let len = edges.len();
    for i in 0..m {
        let j = rng.random_range(i..len);
        edges.swap(i, j);
    }
    edges.truncate(m);
    edges.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_drops_loops_and_duplicates() {
        let mut e = vec![(1, 1), (0, 1), (0, 1), (2, 0)];
        normalize(&mut e);
        assert_eq!(e, vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn sample_exactly_is_deterministic_and_sized() {
        let pool: Vec<Edge> = (0..100u32).map(|i| (i, i + 1)).collect();
        let mut a = pool.clone();
        let mut b = pool.clone();
        sample_exactly(&mut a, 10, 7);
        sample_exactly(&mut b, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let mut c = pool.clone();
        sample_exactly(&mut c, 10, 8);
        assert_ne!(a, c, "different seeds should pick different subsets");
    }

    #[test]
    fn sample_exactly_noop_when_pool_small() {
        let mut e = vec![(0, 1), (1, 2)];
        sample_exactly(&mut e, 10, 1);
        assert_eq!(e.len(), 2);
    }
}
