//! Barabási–Albert preferential attachment.
//!
//! Each arriving vertex attaches `k` out-edges to existing vertices chosen
//! proportional to their current (in + out) degree, using the standard
//! trick of sampling uniformly from the flat endpoint list. Early vertices
//! become hubs, again matching the low-id hub locality of real crawls.

use crate::{CsrGraph, Edge, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a Barabási–Albert graph: `n` vertices, each newcomer attaching
/// `k` edges preferentially. The first `k + 1` vertices form a seed clique.
/// The output is directed newcomer→target; symmetrize with
/// [`GraphBuilder`](crate::GraphBuilder) if an undirected view is needed.
///
/// # Panics
///
/// Panics if `n <= k` or `k == 0`.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> CsrGraph {
    assert!(k > 0, "attachment count must be positive");
    assert!(n > k, "need more vertices than the attachment count");
    let mut rng = StdRng::seed_from_u64(seed);

    let seed_size = k + 1;
    let mut edges: Vec<Edge> = Vec::with_capacity(seed_size * k + (n - seed_size) * k);
    // Flat list where each vertex appears once per incident edge; sampling a
    // uniform element is sampling proportional to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * k);

    // Seed clique.
    for u in 0..seed_size as VertexId {
        for v in 0..seed_size as VertexId {
            if u < v {
                edges.push((u, v));
                endpoints.push(u);
                endpoints.push(v);
            }
        }
    }

    let mut targets: Vec<VertexId> = Vec::with_capacity(k);
    for u in seed_size as VertexId..n as VertexId {
        targets.clear();
        // Rejection loop: distinct targets, no self-loop.
        while targets.len() < k {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != u && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((u, t));
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_formula() {
        let (n, k) = (500, 4);
        let g = barabasi_albert(n, k, 3);
        let seed_edges = (k + 1) * k / 2;
        assert_eq!(g.num_edges(), seed_edges + (n - k - 1) * k);
        assert_eq!(g.num_vertices(), n);
    }

    #[test]
    fn early_vertices_are_hubs() {
        let g = barabasi_albert(2_000, 3, 9);
        let early: usize = (0..20u32).map(|v| g.out_degree(v) + g.in_degree(v)).sum();
        let late: usize = (1980..2000u32)
            .map(|v| g.out_degree(v) + g.in_degree(v))
            .sum();
        assert!(early > late * 3, "early={early} late={late}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(300, 2, 5), barabasi_albert(300, 2, 5));
        assert_ne!(barabasi_albert(300, 2, 5), barabasi_albert(300, 2, 6));
    }

    #[test]
    fn newcomers_have_exactly_k_out_edges() {
        let (n, k) = (100, 3);
        let g = barabasi_albert(n, k, 1);
        for v in (k as u32 + 1)..n as u32 {
            assert_eq!(g.out_degree(v), k, "vertex {v}");
        }
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn tiny_n_panics() {
        barabasi_albert(3, 3, 0);
    }
}
