//! Chung-Lu power-law random graphs.
//!
//! Vertices carry weights `w_i = (i + i0)^(-s)`; endpoints of each edge are
//! drawn independently proportional to the weights via an alias table, so
//! the expected degree of vertex `i` is proportional to `w_i` — a power law
//! with exponent `beta = 1 + 1/s` and hubs concentrated at the low end of
//! the ID space. That hub locality is what makes Chunk-V/Chunk-E imbalanced
//! in the paper (real crawls order hubs early too), so we preserve it by
//! default instead of shuffling ids.
//!
//! The offset `i0` is binary-searched so the largest expected degree lands
//! near `max_degree`, which keeps collision (multi-edge) rates low enough
//! that the deduplicated edge count converges to the target quickly.

use super::{normalize, sample_exactly};
use crate::alias::AliasTable;
use crate::{CsrGraph, Edge, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`chung_lu`].
#[derive(Clone, Debug)]
pub struct ChungLuConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges (after dedup, exact).
    pub edges: usize,
    /// Weight decay exponent `s`; degree power-law exponent is `1 + 1/s`.
    pub exponent_s: f64,
    /// Target expected degree of the largest hub.
    pub max_degree: f64,
    /// Probability that an edge's target is drawn *locally* (near the
    /// source id) instead of globally proportional to the weights.
    ///
    /// Real crawl orders place community members at nearby ids, which is
    /// what gives contiguous chunking its locality advantage over hashing
    /// and gives Fennel's neighbor-affinity term something to discover;
    /// pure Chung-Lu sampling has neither. `0.0` disables locality.
    pub locality: f64,
    /// Mean id-distance of local targets (exponential offset distribution,
    /// wrapped modulo `n`). Ignored when `locality == 0`.
    pub locality_window: usize,
    /// Probability that an edge's target is drawn uniformly from the
    /// source's *community* — a seeded random vertex group scattered across
    /// the id space.
    ///
    /// This is the structure edge-cut minimizers exploit on real graphs:
    /// Fennel's affinity term discovers scattered communities, while
    /// contiguous chunking cannot, reproducing the paper's Fennel ≪
    /// Chunk-V ≪ Hash cut ordering. `locality + community <= 1` required.
    pub community: f64,
    /// Number of communities (membership is a seeded hash of the vertex
    /// id, so communities are id-scattered). Ignored when
    /// `community == 0`.
    pub community_count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ChungLuConfig {
    /// A reasonable default: mild skew, hubs capped at 5% of `n`.
    pub fn new(vertices: usize, edges: usize, seed: u64) -> Self {
        ChungLuConfig {
            vertices,
            edges,
            exponent_s: 0.75,
            max_degree: (vertices as f64 * 0.05).max(8.0),
            locality: 0.0,
            locality_window: (vertices / 200).max(4),
            community: 0.0,
            community_count: (vertices / 64).max(1),
            seed,
        }
    }
}

/// Generates a directed Chung-Lu power-law graph. Self-loops and duplicate
/// edges are removed; the result has exactly `config.edges` edges.
///
/// # Panics
///
/// Panics if the requested edge count exceeds `n * (n - 1)` (the simple
/// directed graph capacity) or if `vertices == 0` with `edges > 0`.
pub fn chung_lu(config: &ChungLuConfig) -> CsrGraph {
    let n = config.vertices;
    let m = config.edges;
    assert!(n > 0 || m == 0, "cannot place edges in an empty graph");
    if n > 1 {
        assert!(
            (m as u128) <= (n as u128) * (n as u128 - 1),
            "edge count {m} exceeds simple-graph capacity"
        );
    }
    if m == 0 {
        return CsrGraph::from_edges(n, &[]);
    }

    assert!(
        config.locality >= 0.0
            && config.community >= 0.0
            && config.locality + config.community <= 1.0,
        "locality + community must form a sub-probability"
    );
    let weights = build_weights(n, m, config.exponent_s, config.max_degree);
    let table = AliasTable::new(&weights);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let window = config.locality_window.max(1) as f64;

    // Scattered community membership: a seeded hash of the id, so members
    // of one community are spread across the whole id range.
    let communities: Vec<Vec<VertexId>> = if config.community > 0.0 {
        let count = config.community_count.max(1);
        let mut groups: Vec<Vec<VertexId>> = vec![Vec::new(); count];
        for v in 0..n as VertexId {
            groups[community_of(v, config.seed, count)].push(v);
        }
        groups
    } else {
        Vec::new()
    };

    let mut pool: Vec<Edge> = Vec::with_capacity(m + m / 8);
    // Sample in rounds: collisions and self-loops shrink each batch, so we
    // oversample the deficit by 15% until the deduplicated pool is full.
    let mut rounds = 0;
    while pool.len() < m {
        let deficit = m - pool.len();
        let batch = deficit + deficit / 7 + 8;
        for _ in 0..batch {
            let u = table.sample(&mut rng) as VertexId;
            let r: f64 = rng.random();
            let v = if r < config.community {
                // Community target: uniform member of u's community.
                let members = &communities[community_of(u, config.seed, communities.len())];
                members[rng.random_range(0..members.len())]
            } else if r < config.community + config.locality {
                // Local target: signed exponential id offset, wrapped mod n.
                let r: f64 = rng.random();
                let off = (-window * (1.0 - r).ln()).floor() as i64 + 1;
                let off = if rng.random_bool(0.5) { off } else { -off };
                (u as i64 + off).rem_euclid(n as i64) as VertexId
            } else {
                table.sample(&mut rng) as VertexId
            };
            pool.push((u, v));
        }
        normalize(&mut pool);
        rounds += 1;
        assert!(
            rounds < 64,
            "chung-lu failed to reach {m} unique edges (got {}); weights too concentrated",
            pool.len()
        );
    }
    sample_exactly(&mut pool, m, config.seed);
    CsrGraph::from_edges(n, &pool)
}

/// Seeded hash assigning vertex `v` to one of `count` communities.
#[inline]
fn community_of(v: VertexId, seed: u64, count: usize) -> usize {
    let mut x = v as u64 ^ seed.wrapping_mul(0x517c_c1b7_2722_0a95);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((x ^ (x >> 31)) % count as u64) as usize
}

/// Builds the weight vector `w_i = (i + i0)^(-s)` with `i0` chosen so the
/// expected degree of vertex 0, `m * w_0 / sum(w)`, is close to `max_degree`.
fn build_weights(n: usize, m: usize, s: f64, max_degree: f64) -> Vec<f64> {
    assert!(s > 0.0, "exponent must be positive");
    let target = max_degree.clamp(1.0, n as f64);
    let expected_max = |i0: f64| -> f64 {
        let w0 = i0.powf(-s);
        let total: f64 = (0..n).map(|i| (i as f64 + i0).powf(-s)).sum();
        m as f64 * w0 / total
    };
    // Expected max degree decreases monotonically in i0; bracket then bisect.
    let (mut lo, mut hi) = (1e-3_f64, 1.0_f64);
    while expected_max(hi) > target && hi < n as f64 * 4.0 {
        hi *= 2.0;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected_max(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let i0 = 0.5 * (lo + hi);
    (0..n).map(|i| (i as f64 + i0).powf(-s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChungLuConfig {
        ChungLuConfig {
            exponent_s: 1.0,
            max_degree: 150.0,
            ..ChungLuConfig::new(2_000, 16_000, 42)
        }
    }

    #[test]
    fn exact_edge_count_no_loops_no_dups() {
        let g = chung_lu(&small());
        assert_eq!(g.num_vertices(), 2_000);
        assert_eq!(g.num_edges(), 16_000);
        for u in g.vertices() {
            let nbrs = g.out_neighbors(u);
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1], "duplicate edge from {u}");
            }
            assert!(!nbrs.contains(&u), "self loop at {u}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = chung_lu(&small());
        let b = chung_lu(&small());
        assert_eq!(a, b);
        let mut cfg = small();
        cfg.seed = 43;
        let c = chung_lu(&cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn hubs_live_at_low_ids() {
        let g = chung_lu(&small());
        let low: u64 = g.degree_sum(0..200u32);
        let high: u64 = g.degree_sum(1800..2000u32);
        assert!(
            low > high * 4,
            "low-id vertices should dominate degree mass: low={low}, high={high}"
        );
    }

    #[test]
    fn max_degree_is_roughly_controlled() {
        let g = chung_lu(&small());
        let max = g.max_out_degree() as f64;
        // collisions + randomness allow slack; it must be within a small
        // constant factor of the requested cap and far below n.
        assert!(max < 150.0 * 3.0, "max degree {max} too large");
        assert!(max > 150.0 / 4.0, "max degree {max} too small");
    }

    #[test]
    fn locality_concentrates_targets_near_sources() {
        let mut cfg = small();
        cfg.locality = 0.8;
        cfg.locality_window = 20;
        let g = chung_lu(&cfg);
        let n = g.num_vertices() as i64;
        let near = g
            .edges()
            .filter(|&(u, v)| {
                let d = (u as i64 - v as i64).rem_euclid(n);
                d.min(n - d) <= 100
            })
            .count() as f64
            / g.num_edges() as f64;
        assert!(near > 0.5, "local share {near} too small");
        // Without locality the same window catches only ~2x100/2000 = 10%
        // of targets plus the hub mass near id 0.
        let g0 = chung_lu(&small());
        let near0 = g0
            .edges()
            .filter(|&(u, v)| {
                let d = (u as i64 - v as i64).rem_euclid(n);
                d.min(n - d) <= 100
            })
            .count() as f64
            / g0.num_edges() as f64;
        assert!(
            near > near0 + 0.2,
            "locality should raise near share: {near} vs {near0}"
        );
    }

    #[test]
    fn zero_edges_ok() {
        let g = chung_lu(&ChungLuConfig::new(10, 0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn default_config_runs() {
        let g = chung_lu(&ChungLuConfig::new(500, 2_000, 9));
        assert_eq!(g.num_edges(), 2_000);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_capacity_panics() {
        chung_lu(&ChungLuConfig::new(3, 10, 1));
    }
}
