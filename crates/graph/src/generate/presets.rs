//! Dataset presets standing in for the paper's evaluation graphs.
//!
//! | Paper graph  | n      | m      | d̄    | here (scale = 1)                |
//! |--------------|--------|--------|-------|---------------------------------|
//! | LiveJournal  | 7.5 M  | 225 M  | 29.99 | `lj_like`: 75 K v, 2.25 M e     |
//! | Twitter      | 41.4 M | 1.48 B | 35.72 | `twitter_like`: 100 K v, 3.57 M |
//! | Friendster   | 65.6 M | 3.6 B  | 54.87 | `friendster_like`: 120 K v, 6.6 M |
//!
//! Average degree matches the paper exactly; the absolute scale is reduced
//! ~400-550x so every experiment runs on a laptop. Skew exponents are chosen
//! so Twitter is the most skewed and Friendster the least, matching the
//! relative per-dataset edge-cut and bias orderings of Table 3 / §4.2.

use super::chung_lu::{chung_lu, ChungLuConfig};
use crate::CsrGraph;

/// A named synthetic dataset recipe.
#[derive(Clone, Debug)]
pub struct DatasetPreset {
    /// Human-readable name used in harness output ("twitter_like", ...).
    pub name: &'static str,
    /// Vertex count at scale 1.
    pub vertices: usize,
    /// Edge count at scale 1.
    pub edges: usize,
    /// Chung-Lu weight decay exponent (skew; larger s = more skew).
    pub exponent_s: f64,
    /// Hub cap as a fraction of the vertex count.
    pub max_degree_frac: f64,
    /// Probability that an edge's target is local in id space (crawl-order
    /// locality; see [`ChungLuConfig::locality`]).
    pub locality: f64,
    /// Probability that an edge stays within the source's id-scattered
    /// community (see [`ChungLuConfig::community`]); this is what lets
    /// Fennel beat contiguous chunking on edge cuts, as on real graphs.
    pub community: f64,
    /// Generation seed (fixed so every figure sees the same graph).
    pub seed: u64,
}

impl DatasetPreset {
    /// Generates the preset graph at full (scale = 1) size.
    pub fn generate(&self) -> CsrGraph {
        self.generate_scaled(1.0)
    }

    /// Generates the preset scaled by `scale` in both vertices and edges
    /// (average degree is preserved). Useful for quick tests
    /// (`generate_scaled(0.01)`) or stress runs (`2.0`).
    pub fn generate_scaled(&self, scale: f64) -> CsrGraph {
        assert!(scale > 0.0, "scale must be positive");
        let vertices = ((self.vertices as f64 * scale).round() as usize).max(16);
        let edges =
            ((self.edges as f64 * scale).round() as usize).min(vertices * (vertices - 1) / 2);
        chung_lu(&ChungLuConfig {
            vertices,
            edges,
            exponent_s: self.exponent_s,
            max_degree: (vertices as f64 * self.max_degree_frac).max(8.0),
            locality: self.locality,
            locality_window: (vertices / 200).max(4),
            community: self.community,
            community_count: (vertices / 64).max(1),
            seed: self.seed,
        })
    }

    /// Average degree implied by the recipe.
    pub fn average_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }
}

/// LiveJournal stand-in: d̄ ≈ 30, moderate skew.
pub fn lj_like() -> DatasetPreset {
    DatasetPreset {
        name: "lj_like",
        vertices: 75_000,
        edges: 2_249_250, // 75_000 * 29.99
        exponent_s: 0.85,
        max_degree_frac: 0.035,
        locality: 0.20,
        community: 0.40,
        seed: 0x1157_0001,
    }
}

/// Twitter stand-in: d̄ ≈ 35.7, strongest skew (celebrity hubs).
pub fn twitter_like() -> DatasetPreset {
    DatasetPreset {
        name: "twitter_like",
        vertices: 100_000,
        edges: 3_572_000, // 100_000 * 35.72
        exponent_s: 1.0,
        max_degree_frac: 0.07,
        locality: 0.08,
        community: 0.62,
        seed: 0x1157_0002,
    }
}

/// Friendster stand-in: d̄ ≈ 54.9, mildest skew.
pub fn friendster_like() -> DatasetPreset {
    DatasetPreset {
        name: "friendster_like",
        vertices: 120_000,
        edges: 6_584_400, // 120_000 * 54.87
        exponent_s: 0.70,
        max_degree_frac: 0.02,
        locality: 0.12,
        community: 0.62,
        seed: 0x1157_0003,
    }
}

/// The three presets in the order the paper tabulates them.
pub const ALL_PRESETS: [fn() -> DatasetPreset; 3] = [lj_like, twitter_like, friendster_like];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_degrees_match_paper() {
        assert!((lj_like().average_degree() - 29.99).abs() < 0.01);
        assert!((twitter_like().average_degree() - 35.72).abs() < 0.01);
        assert!((friendster_like().average_degree() - 54.87).abs() < 0.01);
    }

    #[test]
    fn scaled_generation_preserves_average_degree() {
        let p = twitter_like();
        let g = p.generate_scaled(0.02);
        assert!((g.average_degree() - p.average_degree()).abs() < 2.0);
        assert_eq!(g.num_vertices(), 2_000);
    }

    #[test]
    fn scaled_generation_is_deterministic() {
        let p = lj_like();
        assert_eq!(p.generate_scaled(0.01), p.generate_scaled(0.01));
    }

    #[test]
    fn twitter_is_most_skewed() {
        // Compare top-1% degree mass at small scale.
        let mass_frac = |p: DatasetPreset| {
            let g = p.generate_scaled(0.05);
            let top = g.num_vertices() / 100;
            g.degree_sum(0..top as u32) as f64 / g.num_edges() as f64
        };
        let tw = mass_frac(twitter_like());
        let lj = mass_frac(lj_like());
        let fr = mass_frac(friendster_like());
        assert!(tw > lj && lj > fr, "tw={tw:.3} lj={lj:.3} fr={fr:.3}");
    }

    #[test]
    fn all_presets_array_ordering() {
        let names: Vec<_> = ALL_PRESETS.iter().map(|f| f().name).collect();
        assert_eq!(names, vec!["lj_like", "twitter_like", "friendster_like"]);
    }
}
