//! Uniform `G(n, m)` random graphs.

use super::{normalize, sample_exactly};
use crate::{CsrGraph, Edge, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a directed Erdős–Rényi graph with exactly `m` unique loop-free
/// edges drawn uniformly from all `n * (n - 1)` possibilities.
///
/// # Panics
///
/// Panics if `m` exceeds the simple-graph capacity.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n > 0 || m == 0, "cannot place edges in an empty graph");
    if n > 1 {
        assert!(
            (m as u128) <= (n as u128) * (n as u128 - 1),
            "edge count {m} exceeds simple-graph capacity"
        );
    }
    if m == 0 {
        return CsrGraph::from_edges(n, &[]);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<Edge> = Vec::with_capacity(m + m / 8);
    let mut rounds = 0;
    while pool.len() < m {
        let deficit = m - pool.len();
        let batch = deficit + deficit / 7 + 8;
        for _ in 0..batch {
            let u = rng.random_range(0..n) as VertexId;
            let v = rng.random_range(0..n) as VertexId;
            pool.push((u, v));
        }
        normalize(&mut pool);
        rounds += 1;
        assert!(rounds < 64, "erdos-renyi failed to reach {m} unique edges");
    }
    sample_exactly(&mut pool, m, seed);
    CsrGraph::from_edges(n, &pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_and_determinism() {
        let g = erdos_renyi(200, 1_500, 7);
        assert_eq!(g.num_vertices(), 200);
        assert_eq!(g.num_edges(), 1_500);
        assert_eq!(g, erdos_renyi(200, 1_500, 7));
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let g = erdos_renyi(1_000, 20_000, 13);
        let low = g.degree_sum(0..500u32) as f64;
        let high = g.degree_sum(500..1000u32) as f64;
        assert!((low / high - 1.0).abs() < 0.1, "low={low} high={high}");
    }

    #[test]
    fn dense_request_fills_capacity() {
        let g = erdos_renyi(10, 90, 3);
        assert_eq!(g.num_edges(), 90);
    }

    #[test]
    fn no_loops() {
        let g = erdos_renyi(50, 500, 21);
        for u in g.vertices() {
            assert!(!g.out_neighbors(u).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_check() {
        erdos_renyi(4, 13, 1);
    }
}
