//! R-MAT (recursive matrix) graph generator.
//!
//! Each edge is placed by recursively descending into one of the four
//! quadrants of the adjacency matrix with probabilities `(a, b, c, d)`.
//! With the classic skewed parameters the result is a power-law-ish graph
//! whose hubs sit at low vertex ids — the same locality the Chung-Lu
//! presets rely on.

use super::{normalize, sample_exactly};
use crate::{CsrGraph, Edge, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`rmat`].
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the number of vertices (n = 2^scale).
    pub scale: u32,
    /// Number of directed edges (after dedup, exact).
    pub edges: usize,
    /// Quadrant probabilities; must sum to 1. Defaults: Graph500's
    /// `(0.57, 0.19, 0.19, 0.05)`.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500-style defaults.
    pub fn new(scale: u32, edges: usize, seed: u64) -> Self {
        RmatConfig {
            scale,
            edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates a directed R-MAT graph with `2^scale` vertices and exactly
/// `edges` unique, loop-free edges.
///
/// # Panics
///
/// Panics if the quadrant probabilities are invalid or if the edge count
/// exceeds the simple-graph capacity.
pub fn rmat(config: &RmatConfig) -> CsrGraph {
    let n = 1usize << config.scale;
    let m = config.edges;
    let d = config.d();
    assert!(
        config.a > 0.0 && config.b >= 0.0 && config.c >= 0.0 && d >= 0.0,
        "invalid quadrant probabilities"
    );
    assert!(
        (m as u128) <= (n as u128) * (n as u128 - 1),
        "edge count {m} exceeds simple-graph capacity"
    );
    if m == 0 {
        return CsrGraph::from_edges(n, &[]);
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pool: Vec<Edge> = Vec::with_capacity(m + m / 8);
    let mut rounds = 0;
    while pool.len() < m {
        let deficit = m - pool.len();
        let batch = deficit + deficit / 7 + 8;
        for _ in 0..batch {
            pool.push(place_edge(config, &mut rng));
        }
        normalize(&mut pool);
        rounds += 1;
        assert!(
            rounds < 64,
            "rmat failed to reach {m} unique edges (got {})",
            pool.len()
        );
    }
    sample_exactly(&mut pool, m, config.seed);
    CsrGraph::from_edges(n, &pool)
}

/// One recursive quadrant descent.
fn place_edge(config: &RmatConfig, rng: &mut StdRng) -> Edge {
    let (mut u, mut v) = (0u64, 0u64);
    let ab = config.a + config.b;
    let abc = ab + config.c;
    for level in (0..config.scale).rev() {
        let r: f64 = rng.random();
        let bit = 1u64 << level;
        if r < config.a {
            // top-left: no bits set
        } else if r < ab {
            v |= bit;
        } else if r < abc {
            u |= bit;
        } else {
            u |= bit;
            v |= bit;
        }
    }
    (u as VertexId, v as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_and_determinism() {
        let cfg = RmatConfig::new(10, 8_000, 5);
        let g = rmat(&cfg);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 8_000);
        assert_eq!(g, rmat(&cfg));
    }

    #[test]
    fn skewed_toward_low_ids() {
        let g = rmat(&RmatConfig::new(10, 8_000, 5));
        let low = g.degree_sum(0..256u32);
        let high = g.degree_sum(768..1024u32);
        assert!(low > high * 2, "low={low} high={high}");
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = rmat(&RmatConfig::new(8, 2_000, 11));
        for u in g.vertices() {
            let nbrs = g.out_neighbors(u);
            assert!(!nbrs.contains(&u));
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn uniform_quadrants_behave_like_er() {
        let mut cfg = RmatConfig::new(9, 4_000, 3);
        (cfg.a, cfg.b, cfg.c) = (0.25, 0.25, 0.25);
        let g = rmat(&cfg);
        let low = g.degree_sum(0..256u32) as f64;
        let high = g.degree_sum(256..512u32) as f64;
        assert!((low / high - 1.0).abs() < 0.25, "low={low} high={high}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_check() {
        rmat(&RmatConfig::new(2, 100, 1));
    }
}
