//! Binary CSR format.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   [u8; 4]   = b"BPGR"
//! version u32       = 1
//! n       u64       vertex count
//! m       u64       edge count
//! offsets [u64; n+1]
//! targets [u32; m]
//! ```
//!
//! The in-adjacency is rebuilt on load rather than stored — it is fully
//! derivable and the rebuild is a linear counting sort.

use crate::{CsrGraph, Edge, GraphError, VertexId};
use std::io::{BufWriter, Read, Write};

pub(crate) const MAGIC: [u8; 4] = *b"BPGR";
pub(crate) const VERSION: u32 = 1;

/// Bytes before the offsets array: magic + version + n + m.
pub(crate) const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Vertex ids are `u32`, so any valid file has `n <= u32::MAX`; a larger
/// count is corrupt (and would otherwise drive a multi-gigabyte
/// allocation before the first offset is even read).
pub(crate) const MAX_VERTICES: u64 = u32::MAX as u64;

/// Validated header of a binary CSR file: `(n, m)` once magic, version,
/// declared sizes, and the offset invariants have all been checked against
/// `bytes`. Shared by the owned parser ([`read_binary_bytes`]) and the
/// out-of-core view ([`super::oocsr::MappedCsr`]), so both accept exactly
/// the same files.
pub(crate) fn validate_header(bytes: &[u8]) -> Result<(usize, u64, Vec<u64>), GraphError> {
    let truncated = || GraphError::Format("truncated header".into());
    let magic = bytes.get(..4).ok_or_else(truncated)?;
    if magic != MAGIC {
        return Err(GraphError::Format(format!("bad magic {magic:?}")));
    }
    let version = u32::from_le_bytes(bytes.get(4..8).ok_or_else(truncated)?.try_into().unwrap());
    if version != VERSION {
        return Err(GraphError::Format(format!("unsupported version {version}")));
    }
    let header = bytes.get(..HEADER_LEN).ok_or_else(truncated)?;
    let n64 = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if n64 > MAX_VERTICES {
        return Err(GraphError::Format(format!(
            "vertex count {n64} exceeds the u32 id space"
        )));
    }
    let n = n64 as usize;
    let m64 = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let need = HEADER_LEN as u128 + (n as u128 + 1) * 8 + m64 as u128 * 4;
    if (bytes.len() as u128) < need {
        return Err(GraphError::Format(format!(
            "file too short: {} bytes, header declares n = {n}, m = {m64}",
            bytes.len()
        )));
    }
    let offsets_end = HEADER_LEN + (n + 1) * 8;
    let mut offsets: Vec<u64> = Vec::with_capacity(n + 1);
    offsets.extend(
        bytes[HEADER_LEN..offsets_end]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
    );
    if offsets.first() != Some(&0) || offsets.last() != Some(&m64) {
        return Err(GraphError::Format("offset array endpoints invalid".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphError::Format("offsets not monotone".into()));
    }
    Ok((n, m64, offsets))
}

/// Serializes a graph to the binary CSR format.
pub fn write_binary<W: Write>(graph: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut bw = BufWriter::new(writer);
    bw.write_all(&MAGIC)?;
    bw.write_all(&VERSION.to_le_bytes())?;
    bw.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    bw.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for &o in graph.raw_offsets() {
        bw.write_all(&o.to_le_bytes())?;
    }
    for &t in graph.raw_targets() {
        bw.write_all(&t.to_le_bytes())?;
    }
    bw.flush()?;
    Ok(())
}

/// Deserializes a graph from the binary CSR format, validating the header
/// and the offset invariants.
///
/// Owned-read convenience: slurps the stream and delegates to
/// [`read_binary_bytes`]. When the source is a file, prefer
/// [`load_binary`](super::load_binary), which memory-maps it instead of
/// copying it through a `Vec`.
pub fn read_binary<R: Read>(mut reader: R) -> Result<CsrGraph, GraphError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    read_binary_bytes(&bytes)
}

/// Deserializes a graph from an in-memory byte view of the binary CSR
/// format — the parser behind both [`read_binary`] and the mmap-backed
/// [`load_binary`](super::load_binary).
///
/// Validation happens *before* any allocation: the header's declared
/// counts are checked against `bytes.len()`, so a corrupt or truncated
/// header fails with a clean format error instead of driving a huge
/// pre-allocation. The offsets/targets regions are then bulk-decoded
/// straight out of the view (`chunks_exact` + `from_le_bytes`, which the
/// compiler lowers to wide copies on little-endian targets — no
/// per-element reader calls, no intermediate buffers), and the
/// in-adjacency is rebuilt with a single counting-sort pass. Trailing
/// bytes after the arrays are ignored, matching the streaming reader's
/// historical behaviour.
pub fn read_binary_bytes(bytes: &[u8]) -> Result<CsrGraph, GraphError> {
    // Field-by-field header checks (inside `validate_header`), so a short
    // buffer still reports the most specific problem (bad magic beats
    // "truncated").
    let (n, m64, offsets) = validate_header(bytes)?;
    let m = m64 as usize;
    let offsets_end = HEADER_LEN + (n + 1) * 8;
    let mut targets: Vec<VertexId> = Vec::with_capacity(m);
    targets.extend(
        bytes[offsets_end..offsets_end + m * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
    );
    if let Some(&t) = targets.iter().find(|&&t| t as usize >= n) {
        return Err(GraphError::Format(format!(
            "target {t} out of range (n = {n})"
        )));
    }

    // Fast path for well-formed files (everything `write_binary` emits):
    // adjacency lists arrive sorted, so the arrays can be adopted as-is
    // and only the in-adjacency needs deriving.
    let lists_sorted = (0..n).all(|v| {
        targets[offsets[v] as usize..offsets[v + 1] as usize]
            .windows(2)
            .all(|w| w[0] <= w[1])
    });
    if lists_sorted {
        return Ok(CsrGraph::from_sorted_csr(offsets, targets));
    }
    // Unsorted lists (a foreign writer): rebuild through the public
    // constructor, which re-establishes the per-list sort invariant.
    let mut edges: Vec<Edge> = Vec::with_capacity(m);
    for v in 0..n {
        for &t in &targets[offsets[v] as usize..offsets[v + 1] as usize] {
            edges.push((v as VertexId, t));
        }
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn round_trip_random_graph() {
        let g = generate::erdos_renyi(300, 2_000, 17);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_empty_graph() {
        let g = CsrGraph::from_edges(5, &[]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BPGR");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // offsets[0]
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_input_rejected() {
        let g = generate::ring(10);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    /// Byte offset of `offsets[i]` in the file layout.
    fn offset_pos(i: usize) -> usize {
        4 + 4 + 8 + 8 + i * 8
    }

    #[test]
    fn non_monotone_offsets_rejected() {
        let g = generate::ring(4); // offsets [0, 1, 2, 3, 4]
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[offset_pos(1)..offset_pos(2)].copy_from_slice(&3u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("not monotone"), "{err}");
    }

    #[test]
    fn offset_endpoint_mismatching_m_rejected() {
        let g = generate::ring(4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[offset_pos(4)..offset_pos(5)].copy_from_slice(&5u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("endpoints invalid"), "{err}");
    }

    #[test]
    fn oversized_vertex_count_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BPGR");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX as u64 + 1).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("u32 id space"), "{err}");
    }

    #[test]
    fn huge_counts_on_a_short_file_fail_cleanly() {
        // A header promising ~u64::MAX elements with no data behind it
        // must produce a read error, not an out-of-memory abort from a
        // trusting pre-allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BPGR");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX as u64).to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // offsets[0], then EOF
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(read_binary(&b"BPGR\x01\x00"[..]).is_err());
        assert!(read_binary(&b"BP"[..]).is_err());
        assert!(read_binary(&b""[..]).is_err());
    }

    #[test]
    fn out_of_range_target_rejected() {
        let g = generate::ring(4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Corrupt the last target to an out-of-range id.
        let len = buf.len();
        buf[len - 4..].copy_from_slice(&100u32.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn unsorted_lists_take_the_rebuild_path() {
        // A foreign writer may emit unsorted adjacency lists; the loader
        // must still normalize them exactly like the old streaming reader
        // (which rebuilt through `from_edges`).
        let g = CsrGraph::from_edges(3, &[(0, 2), (0, 1), (1, 0)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Swap vertex 0's two (sorted) targets so the list arrives as
        // [2, 1].
        let t0 = offset_pos(4); // targets start after offsets[0..=3]
        let (a, b) = (t0, t0 + 4);
        let first = u32::from_le_bytes(buf[a..a + 4].try_into().unwrap());
        let second = u32::from_le_bytes(buf[b..b + 4].try_into().unwrap());
        buf[a..a + 4].copy_from_slice(&second.to_le_bytes());
        buf[b..b + 4].copy_from_slice(&first.to_le_bytes());
        let reloaded = read_binary_bytes(&buf).unwrap();
        assert_eq!(reloaded, g, "lists are re-sorted on load");
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        let g = generate::erdos_renyi(50, 300, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.extend_from_slice(b"junk after the arrays");
        assert_eq!(read_binary_bytes(&buf).unwrap(), g);
    }

    #[cfg(unix)]
    #[test]
    fn mmap_load_matches_owned_read() {
        let g = generate::twitter_like().generate_scaled(0.01);
        let path = std::env::temp_dir().join(format!(
            "bpart-binfmt-test-{}-roundtrip.bpgr",
            std::process::id()
        ));
        write_binary(&g, std::fs::File::create(&path).unwrap()).unwrap();

        let mapped = crate::io::load_binary(&path).unwrap();
        let owned = read_binary(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(mapped, owned);
        assert_eq!(mapped, g);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn mmap_load_rejects_corrupt_files() {
        let g = generate::ring(6);
        let path = std::env::temp_dir().join(format!(
            "bpart-binfmt-test-{}-corrupt.bpgr",
            std::process::id()
        ));
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();

        // Truncated mid-targets.
        std::fs::write(&path, &buf[..buf.len() - 3]).unwrap();
        assert!(crate::io::load_binary(&path).is_err());
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let err = crate::io::load_binary(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
