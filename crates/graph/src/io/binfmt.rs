//! Binary CSR format.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   [u8; 4]   = b"BPGR"
//! version u32       = 1
//! n       u64       vertex count
//! m       u64       edge count
//! offsets [u64; n+1]
//! targets [u32; m]
//! ```
//!
//! The in-adjacency is rebuilt on load rather than stored — it is fully
//! derivable and the rebuild is a linear counting sort.

use crate::{CsrGraph, Edge, GraphError, VertexId};
use std::io::{BufReader, BufWriter, Read, Write};

const MAGIC: [u8; 4] = *b"BPGR";
const VERSION: u32 = 1;

/// Vertex ids are `u32`, so any valid file has `n <= u32::MAX`; a larger
/// count is corrupt (and would otherwise drive a multi-gigabyte
/// allocation before the first offset is even read).
const MAX_VERTICES: u64 = u32::MAX as u64;

/// Untrusted header counts reserve at most this many elements up front;
/// larger arrays grow as data actually arrives, so a corrupt count on a
/// short file fails with a clean read error instead of an OOM abort.
const MAX_PREALLOC: usize = 1 << 20;

/// Serializes a graph to the binary CSR format.
pub fn write_binary<W: Write>(graph: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut bw = BufWriter::new(writer);
    bw.write_all(&MAGIC)?;
    bw.write_all(&VERSION.to_le_bytes())?;
    bw.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    bw.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for &o in graph.raw_offsets() {
        bw.write_all(&o.to_le_bytes())?;
    }
    for &t in graph.raw_targets() {
        bw.write_all(&t.to_le_bytes())?;
    }
    bw.flush()?;
    Ok(())
}

/// Deserializes a graph from the binary CSR format, validating the header
/// and the offset invariants.
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut br = BufReader::new(reader);
    let mut magic = [0u8; 4];
    br.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(GraphError::Format(format!("bad magic {magic:?}")));
    }
    let version = read_u32(&mut br)?;
    if version != VERSION {
        return Err(GraphError::Format(format!("unsupported version {version}")));
    }
    let n64 = read_u64(&mut br)?;
    if n64 > MAX_VERTICES {
        return Err(GraphError::Format(format!(
            "vertex count {n64} exceeds the u32 id space"
        )));
    }
    let n = n64 as usize;
    let m = read_u64(&mut br)? as usize;

    let mut offsets = Vec::with_capacity((n + 1).min(MAX_PREALLOC));
    for _ in 0..=n {
        offsets.push(read_u64(&mut br)?);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&(m as u64)) {
        return Err(GraphError::Format("offset array endpoints invalid".into()));
    }
    for w in offsets.windows(2) {
        if w[0] > w[1] {
            return Err(GraphError::Format("offsets not monotone".into()));
        }
    }
    let mut targets: Vec<VertexId> = Vec::with_capacity(m.min(MAX_PREALLOC));
    for _ in 0..m {
        let t = read_u32(&mut br)?;
        if t as usize >= n {
            return Err(GraphError::Format(format!(
                "target {t} out of range (n = {n})"
            )));
        }
        targets.push(t);
    }
    // Rebuild through the public constructor so the in-adjacency and the
    // per-list sort invariants are re-established.
    let mut edges: Vec<Edge> = Vec::with_capacity(m);
    for v in 0..n {
        for &t in &targets[offsets[v] as usize..offsets[v + 1] as usize] {
            edges.push((v as VertexId, t));
        }
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn round_trip_random_graph() {
        let g = generate::erdos_renyi(300, 2_000, 17);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_empty_graph() {
        let g = CsrGraph::from_edges(5, &[]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BPGR");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // offsets[0]
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_input_rejected() {
        let g = generate::ring(10);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    /// Byte offset of `offsets[i]` in the file layout.
    fn offset_pos(i: usize) -> usize {
        4 + 4 + 8 + 8 + i * 8
    }

    #[test]
    fn non_monotone_offsets_rejected() {
        let g = generate::ring(4); // offsets [0, 1, 2, 3, 4]
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[offset_pos(1)..offset_pos(2)].copy_from_slice(&3u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("not monotone"), "{err}");
    }

    #[test]
    fn offset_endpoint_mismatching_m_rejected() {
        let g = generate::ring(4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[offset_pos(4)..offset_pos(5)].copy_from_slice(&5u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("endpoints invalid"), "{err}");
    }

    #[test]
    fn oversized_vertex_count_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BPGR");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX as u64 + 1).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("u32 id space"), "{err}");
    }

    #[test]
    fn huge_counts_on_a_short_file_fail_cleanly() {
        // A header promising ~u64::MAX elements with no data behind it
        // must produce a read error, not an out-of-memory abort from a
        // trusting pre-allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BPGR");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX as u64).to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // offsets[0], then EOF
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(read_binary(&b"BPGR\x01\x00"[..]).is_err());
        assert!(read_binary(&b"BP"[..]).is_err());
        assert!(read_binary(&b""[..]).is_err());
    }

    #[test]
    fn out_of_range_target_rejected() {
        let g = generate::ring(4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Corrupt the last target to an out-of-range id.
        let len = buf.len();
        buf[len - 4..].copy_from_slice(&100u32.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
