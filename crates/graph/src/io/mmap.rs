//! Read-only memory-mapped file views (unix only).
//!
//! [`Mmap`] maps a file `PROT_READ`/`MAP_PRIVATE` and exposes it as a
//! `&[u8]`, letting the binary-graph loader parse straight out of the
//! page cache instead of copying the file through an owned buffer.
//!
//! # Safety argument
//!
//! The only `unsafe` is the FFI mapping itself and the construction of
//! the byte slice over it; both are sound because:
//!
//! * the mapping is private and read-only — no aliasing writes can come
//!   from this process through the view, and writes by this process to
//!   the underlying file go through ordinary `File` handles the loader
//!   never holds concurrently;
//! * the slice's lifetime is tied to the [`Mmap`] value by the borrow on
//!   [`as_bytes`](Mmap::as_bytes)/`Deref`, and the region is only
//!   unmapped in `Drop`, after every borrow has ended;
//! * a zero-length file is represented as an empty slice without calling
//!   `mmap` at all (`mmap` rejects zero-length maps);
//! * `u8` has no alignment or validity requirements, so any mapped byte
//!   pattern is a valid `[u8]`. Decoding wider integers is done by the
//!   parser with `from_le_bytes` on byte chunks, which is
//!   alignment-oblivious — the view is never reinterpreted as `&[u64]`.
//!
//! The one hazard mmap cannot rule out: if *another process* truncates
//! the file while it is mapped, touching pages past the new end raises
//! `SIGBUS`. Binary graph artifacts are written once and read many
//! times; callers that cannot assume that should use the owned-read
//! fallback ([`read_binary`](super::read_binary)), which
//! [`load_binary`](super::load_binary) also takes automatically whenever
//! mapping fails.

use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

mod ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only memory mapping of an entire file.
#[derive(Debug)]
pub struct Mmap {
    /// Null iff the file was empty (no mapping exists).
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

// The mapping is private and read-only for its whole lifetime, so shared
// access from any thread is fine.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps all of `file` read-only.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len as usize,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == ffi::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr,
            len: len as usize,
        })
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            &[]
        } else {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // Failure here is unrecoverable and harmless to ignore: the
            // region stays mapped until process exit.
            unsafe {
                ffi::munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bpart-mmap-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let payload = b"hello mapped world".repeat(500);
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, payload.as_slice());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
