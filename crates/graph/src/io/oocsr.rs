//! Out-of-core binary CSR view: the graph stays on disk, adjacency is
//! served straight out of a memory mapping.
//!
//! [`MappedCsr`] opens a `BPGR` file (the [`binfmt`](super::binfmt)
//! format) and exposes `out_neighbors(v)` as a borrowed `&[u32]` backed by
//! the page cache — no owned copy of the `targets` array, no derived
//! in-adjacency. Resident cost is the decoded offsets array (`O(n)`);
//! edge data is paged in on demand and evictable, which is what lets the
//! sharding converter walk graphs bigger than RAM.
//!
//! Contrast with [`load_binary`](super::load_binary), which materializes a
//! full [`CsrGraph`] (owned out- *and* in-adjacency, `O(n + m)` resident).
//! Both paths validate the same header invariants via the shared
//! [`binfmt::validate_header`](super::binfmt) checks, so a file one
//! accepts the other accepts.
//!
//! # Zero-copy safety
//!
//! The borrowed neighbor slices reinterpret mapped bytes as `u32`. That is
//! only done when two facts hold, both checked at open time:
//!
//! * the platform is little-endian (the on-disk byte order), and
//! * the targets region is 4-byte aligned — structurally guaranteed,
//!   because the header is 24 bytes, offsets are `8(n+1)` bytes, and
//!   `mmap` returns page-aligned memory.
//!
//! Otherwise the targets are decoded into an owned `Vec<u32>` once and
//! the view degrades to `O(m)` resident (still no in-adjacency). Either
//! way the public API is identical; [`is_zero_copy`](MappedCsr::is_zero_copy)
//! reports which mode was selected.

use super::binfmt::{validate_header, HEADER_LEN};
use crate::{GraphError, VertexId};
use std::path::Path;

#[cfg(unix)]
use super::mmap::Mmap;

enum Backing {
    /// Neighbor slices borrow the mapping directly.
    #[cfg(unix)]
    Mapped(Mmap),
    /// Decoded copy (non-unix, big-endian, or mmap failure).
    Owned(Vec<VertexId>),
}

/// A read-only CSR graph view over a memory-mapped `BPGR` file.
pub struct MappedCsr {
    backing: Backing,
    /// Decoded offsets, `n + 1` entries — the only unconditional `O(n)`
    /// resident state.
    offsets: Vec<u64>,
    n: usize,
    m: u64,
}

impl MappedCsr {
    /// Opens `path`, validating the full header (magic, version, declared
    /// sizes vs. file length, offset monotonicity) plus a one-time
    /// sequential scan asserting every target id is `< n` — after which
    /// [`out_neighbors`](Self::out_neighbors) can index caller state
    /// without per-edge checks.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<MappedCsr, GraphError> {
        let path = path.as_ref();
        #[cfg(unix)]
        {
            let file = std::fs::File::open(path)?;
            if let Ok(map) = Mmap::map(&file) {
                return Self::from_map(map);
            }
        }
        let bytes = std::fs::read(path)?;
        Self::from_owned_bytes(&bytes)
    }

    #[cfg(unix)]
    fn from_map(map: Mmap) -> Result<MappedCsr, GraphError> {
        let (n, m, offsets) = validate_header(&map)?;
        let targets_start = HEADER_LEN + (n + 1) * 8;
        let targets_bytes = &map[targets_start..targets_start + m as usize * 4];
        // Little-endian + aligned: keep the map and borrow from it.
        let aligned = (targets_bytes.as_ptr() as usize) % std::mem::align_of::<VertexId>() == 0;
        if cfg!(target_endian = "little") && aligned {
            validate_targets(
                targets_bytes
                    .chunks_exact(4)
                    .map(|c| VertexId::from_le_bytes(c.try_into().unwrap())),
                n,
            )?;
            return Ok(MappedCsr {
                backing: Backing::Mapped(map),
                offsets,
                n,
                m,
            });
        }
        Self::from_owned_bytes(&map)
    }

    fn from_owned_bytes(bytes: &[u8]) -> Result<MappedCsr, GraphError> {
        let (n, m, offsets) = validate_header(bytes)?;
        let targets_start = HEADER_LEN + (n + 1) * 8;
        let mut targets: Vec<VertexId> = Vec::with_capacity(m as usize);
        targets.extend(
            bytes[targets_start..targets_start + m as usize * 4]
                .chunks_exact(4)
                .map(|c| VertexId::from_le_bytes(c.try_into().unwrap())),
        );
        validate_targets(targets.iter().copied(), n)?;
        Ok(MappedCsr {
            backing: Backing::Owned(targets),
            offsets,
            n,
            m,
        })
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Edge count.
    pub fn num_edges(&self) -> u64 {
        self.m
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Out-neighbors of `v`, borrowed from the mapping (or the decoded
    /// copy in fallback mode).
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped(map) => {
                let start = HEADER_LEN + (self.n + 1) * 8;
                let bytes = &map[start + lo * 4..start + hi * 4];
                // Alignment and endianness were checked at open; targets
                // were range-validated then too.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const VertexId, hi - lo) }
            }
            Backing::Owned(targets) => &targets[lo..hi],
        }
    }

    /// Whether neighbor slices borrow the mapping directly (true) or a
    /// decoded owned copy (false).
    pub fn is_zero_copy(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped(_) => true,
            Backing::Owned(_) => false,
        }
    }
}

impl std::fmt::Debug for MappedCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedCsr")
            .field("n", &self.n)
            .field("m", &self.m)
            .field("zero_copy", &self.is_zero_copy())
            .finish()
    }
}

fn validate_targets(targets: impl Iterator<Item = VertexId>, n: usize) -> Result<(), GraphError> {
    for t in targets {
        if t as usize >= n {
            return Err(GraphError::Format(format!(
                "target {t} out of range (n = {n})"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_binary;
    use crate::{generate, CsrGraph};

    fn temp_bpgr(name: &str, g: &CsrGraph) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "bpart-oocsr-test-{}-{name}.bpgr",
            std::process::id()
        ));
        write_binary(g, std::fs::File::create(&path).unwrap()).unwrap();
        path
    }

    #[test]
    fn matches_in_memory_adjacency() {
        let g = generate::twitter_like().generate_scaled(0.01);
        let path = temp_bpgr("match", &g);
        let view = MappedCsr::open(&path).unwrap();
        assert_eq!(view.num_vertices(), g.num_vertices());
        assert_eq!(view.num_edges(), g.num_edges() as u64);
        for v in g.vertices() {
            assert_eq!(view.out_degree(v), g.out_degree(v));
            assert_eq!(view.out_neighbors(v), g.out_neighbors(v));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(all(unix, target_endian = "little"))]
    #[test]
    fn serves_neighbors_zero_copy() {
        let g = generate::ring(64);
        let path = temp_bpgr("zerocopy", &g);
        let view = MappedCsr::open(&path).unwrap();
        assert!(view.is_zero_copy());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_corrupt_and_truncated_files() {
        let g = generate::ring(8);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let path = std::env::temp_dir().join(format!(
            "bpart-oocsr-test-{}-corrupt.bpgr",
            std::process::id()
        ));

        // Truncated mid-targets.
        std::fs::write(&path, &buf[..buf.len() - 3]).unwrap();
        assert!(MappedCsr::open(&path).is_err());
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let err = MappedCsr::open(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        // Out-of-range target.
        let mut oob = buf.clone();
        let len = oob.len();
        oob[len - 4..].copy_from_slice(&999u32.to_le_bytes());
        std::fs::write(&path, &oob).unwrap();
        let err = MappedCsr::open(&path).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
