//! Graph serialization: text edge lists and a compact binary format.
//!
//! * [`text`] — whitespace-separated `src dst` lines with `#` comments, the
//!   format SNAP/KONECT dumps use, so real datasets drop in unchanged.
//! * [`binfmt`] — fixed-header little-endian CSR dump for fast reloads.

pub mod binfmt;
pub mod text;

pub use binfmt::{read_binary, write_binary};
pub use text::{read_edge_list, write_edge_list};
