//! Graph serialization: text edge lists and a compact binary format.
//!
//! * [`text`] — whitespace-separated `src dst` lines with `#` comments, the
//!   format SNAP/KONECT dumps use, so real datasets drop in unchanged.
//! * [`binfmt`] — fixed-header little-endian CSR dump for fast reloads.
//! * [`mmap`] — read-only file mappings backing [`load_binary`]'s
//!   zero-copy load path (unix only; other platforms use the owned read).
//! * [`oocsr`] — out-of-core CSR view ([`MappedCsr`]) serving adjacency
//!   straight from the mapping with `O(n)` resident memory.

pub mod binfmt;
#[cfg(unix)]
pub mod mmap;
pub mod oocsr;
pub mod text;

pub use binfmt::{read_binary, read_binary_bytes, write_binary};
pub use oocsr::MappedCsr;
pub use text::{read_edge_list, write_edge_list};

use crate::{CsrGraph, GraphError};
use std::path::Path;

/// Loads a binary CSR graph from `path`.
///
/// Prefers parsing straight out of a memory-mapped view of the file
/// (no owned copy of the bytes); falls back to an ordinary owned read
/// when mapping is unavailable (non-unix platforms) or fails. Both paths
/// run the same validated parser ([`read_binary_bytes`]) and produce
/// identical graphs.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    let path = path.as_ref();
    #[cfg(unix)]
    {
        if let Ok(file) = std::fs::File::open(path) {
            if let Ok(map) = mmap::Mmap::map(&file) {
                return read_binary_bytes(&map);
            }
        }
    }
    let bytes = std::fs::read(path)?;
    read_binary_bytes(&bytes)
}
