//! Text edge-list IO (SNAP/KONECT style).
//!
//! Each non-comment line is `source<ws>target`; lines starting with `#` or
//! `%` are comments; blank lines are skipped. Vertex ids are dense `u32`.

use crate::{EdgeList, GraphError, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Parses an edge list from any reader. The vertex universe is the maximum
/// id seen plus one.
pub fn read_edge_list<R: Read>(reader: R) -> Result<EdgeList, GraphError> {
    let mut br = BufReader::new(reader);
    let mut edges = EdgeList::new(0);
    // Reuse one line buffer to avoid per-line allocations (perf-book: reading
    // lines from a file).
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if br.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_ascii_whitespace();
        let (su, sv) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::Format(format!(
                    "line {lineno}: expected `src dst`, got {trimmed:?}"
                )))
            }
        };
        let u: VertexId = su
            .parse()
            .map_err(|_| GraphError::Format(format!("line {lineno}: bad vertex id {su:?}")))?;
        let v: VertexId = sv
            .parse()
            .map_err(|_| GraphError::Format(format!("line {lineno}: bad vertex id {sv:?}")))?;
        edges.push(u, v);
    }
    Ok(edges)
}

/// Writes all edges of `graph` as `src<tab>dst` lines preceded by a summary
/// comment header.
pub fn write_edge_list<W: Write>(graph: &crate::CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut bw = BufWriter::new(writer);
    writeln!(
        bw,
        "# bpart edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(bw, "{u}\t{v}")?;
    }
    bw.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn parses_comments_blanks_and_whitespace() {
        let text = "# header\n% konect header\n\n0 1\n1\t2\n  2   0  \n";
        let el = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(el.edges(), &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(el.num_vertices(), 3);
    }

    #[test]
    fn round_trip() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let el = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(el.into_csr(), g);
    }

    #[test]
    fn bad_line_is_an_error_with_line_number() {
        let err = read_edge_list("0 1\nnonsense\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn bad_vertex_id_is_an_error() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad vertex id"), "{err}");
    }

    #[test]
    fn missing_target_is_an_error() {
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
    }
}
