//! Walker's alias method for O(1) sampling from a discrete distribution.
//!
//! Used by the Chung-Lu generator (endpoint sampling proportional to vertex
//! weights) and by the random-walk engine (KnightKing-style static transition
//! sampling). Construction is O(n); each draw costs one random index plus one
//! random coin.

use rand::{Rng, RngExt};

/// A pre-built alias table over `n` outcomes with the given non-negative
/// weights.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Probability of keeping the column's own outcome (scaled to [0, 1]).
    prob: Vec<f64>,
    /// Alternative outcome taken when the coin exceeds `prob`.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table. Weights must be non-negative and sum to a positive
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/NaN value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "alias table weights must sum to a positive finite value"
        );
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "alias table weights must be non-negative"
            );
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];

        // Classic two-stack construction (Vose's method).
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // The large column donates its excess to fill the small column.
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual columns are exactly 1 up to floating-point error.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no outcomes (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        sample_slices(&self.prob, &self.alias, rng)
    }

    /// The keep-probability column (scaled to [0, 1]).
    pub fn probs(&self) -> &[f64] {
        &self.prob
    }

    /// The alias column.
    pub fn aliases(&self) -> &[u32] {
        &self.alias
    }
}

/// Draws one outcome from a decomposed alias table (`prob`/`alias` columns).
///
/// This is the single sampling routine: [`AliasTable::sample`] delegates
/// here, so callers that keep table columns in their own (bucketed, arena)
/// storage consume the RNG in exactly the same order and produce the same
/// outcome stream as a freshly built [`AliasTable`].
#[inline]
pub fn sample_slices<R: Rng + ?Sized>(prob: &[f64], alias: &[u32], rng: &mut R) -> u32 {
    let i = rng.random_range(0..prob.len());
    if rng.random::<f64>() < prob[i] {
        i as u32
    } else {
        alias[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_all_outcomes() {
        let t = AliasTable::new(&[1.0; 4]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            // each ~10_000; allow 10% slack
            assert!((9_000..=11_000).contains(&c), "count {c} out of tolerance");
        }
    }

    #[test]
    fn skewed_weights_respect_proportions() {
        let t = AliasTable::new(&[8.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        let trials = 100_000;
        for _ in 0..trials {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        let p0 = counts[0] as f64 / trials as f64;
        assert!((p0 - 0.8).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn zero_weight_outcome_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[0.5]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
