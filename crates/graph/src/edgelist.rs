//! Mutable edge-list staging container.
//!
//! Generators and file readers accumulate edges here before freezing them
//! into a [`CsrGraph`]. The container knows how to
//! deduplicate, drop self-loops and symmetrize — the normalization steps
//! real-world edge lists need before partitioning.

use crate::{CsrGraph, Edge, VertexId};

/// A growable list of directed edges plus a vertex count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list with pre-reserved capacity for `cap` edges.
    pub fn with_capacity(num_vertices: usize, cap: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::with_capacity(cap),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges currently staged.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges are staged.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Appends a directed edge. Grows the vertex count if an endpoint is out
    /// of range, so files with implicit vertex universes load cleanly.
    pub fn push(&mut self, u: VertexId, v: VertexId) {
        let needed = (u.max(v) as usize) + 1;
        if needed > self.num_vertices {
            self.num_vertices = needed;
        }
        self.edges.push((u, v));
    }

    /// The staged edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Removes self-loops (`u == u`) in place; returns how many were removed.
    pub fn remove_self_loops(&mut self) -> usize {
        let before = self.edges.len();
        self.edges.retain(|&(u, v)| u != v);
        before - self.edges.len()
    }

    /// Sorts and removes duplicate directed edges in place; returns how many
    /// duplicates were removed.
    pub fn dedup(&mut self) -> usize {
        let before = self.edges.len();
        self.edges.sort_unstable();
        self.edges.dedup();
        before - self.edges.len()
    }

    /// Adds the reverse of every edge, then deduplicates, producing a
    /// symmetric (undirected-as-bidirected) edge set.
    pub fn symmetrize(&mut self) {
        let reversed: Vec<Edge> = self.edges.iter().map(|&(u, v)| (v, u)).collect();
        self.edges.extend(reversed);
        self.dedup();
    }

    /// Freezes the staged edges into a [`CsrGraph`].
    pub fn into_csr(self) -> CsrGraph {
        CsrGraph::from_edges(self.num_vertices, &self.edges)
    }

    /// Extends from an iterator of edges (growing the vertex universe).
    pub fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.push(u, v);
        }
    }
}

impl FromIterator<Edge> for EdgeList {
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        let mut el = EdgeList::new(0);
        el.extend(iter);
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_grows_vertex_universe() {
        let mut el = EdgeList::new(0);
        el.push(3, 7);
        assert_eq!(el.num_vertices(), 8);
        assert_eq!(el.num_edges(), 1);
    }

    #[test]
    fn explicit_universe_is_kept_when_larger() {
        let mut el = EdgeList::new(100);
        el.push(0, 1);
        assert_eq!(el.num_vertices(), 100);
    }

    #[test]
    fn remove_self_loops() {
        let mut el: EdgeList = [(0, 0), (0, 1), (1, 1)].into_iter().collect();
        assert_eq!(el.remove_self_loops(), 2);
        assert_eq!(el.edges(), &[(0, 1)]);
    }

    #[test]
    fn dedup_removes_repeats() {
        let mut el: EdgeList = [(1, 0), (0, 1), (1, 0)].into_iter().collect();
        assert_eq!(el.dedup(), 1);
        assert_eq!(el.edges(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn symmetrize_adds_reverse_edges_once() {
        let mut el: EdgeList = [(0, 1), (1, 0), (1, 2)].into_iter().collect();
        el.symmetrize();
        assert_eq!(el.edges(), &[(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn into_csr_round_trip() {
        let el: EdgeList = [(0, 1), (2, 0)].into_iter().collect();
        let g = el.into_csr();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(2), &[0]);
    }

    #[test]
    fn from_iterator_and_is_empty() {
        let el: EdgeList = std::iter::empty().collect();
        assert!(el.is_empty());
        assert_eq!(el.num_vertices(), 0);
    }
}
