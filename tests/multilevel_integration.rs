//! Cross-crate integration for the offline multilevel baseline: §4.2's
//! qualitative comparison and compatibility with the engines.

use bpart_core::prelude::*;
use bpart_engine::{apps, IterationEngine};
use bpart_graph::{generate, traversal};
use bpart_multilevel::{Multilevel, MultilevelConfig};
use std::sync::Arc;

#[test]
fn multilevel_balances_vertices_but_not_edges() {
    // The §4.2 shape at a scale where the skew shows.
    let g = generate::twitter_like().generate_scaled(0.2);
    let p = Multilevel::default().partition(&g, 8);
    let v = metrics::bias(p.vertex_counts());
    let e = metrics::bias(p.edge_counts());
    assert!(v < 0.05, "vertex bias {v} (paper: 0.03)");
    assert!(e > 0.5, "edge bias {e} (paper: 2.56 on Twitter)");
    let q = metrics::quality(&g, &BPart::default().partition(&g, 8));
    assert!(
        q.vertex_bias < 0.1 && q.edge_bias < 0.1,
        "BPart beats it in 2D"
    );
}

#[test]
fn multilevel_cut_beats_every_streaming_scheme() {
    // Offline partitioners see the whole graph and should win on cuts.
    let g = generate::lj_like().generate_scaled(0.05);
    let ml_cut = metrics::edge_cut_ratio(&g, &Multilevel::default().partition(&g, 8));
    for scheme in [
        &ChunkV as &dyn Partitioner,
        &ChunkE,
        &Fennel::default(),
        &HashPartitioner::default(),
    ] {
        let cut = metrics::edge_cut_ratio(&g, &scheme.partition(&g, 8));
        assert!(
            ml_cut < cut,
            "multilevel {ml_cut} should beat {} {cut}",
            scheme.name()
        );
    }
}

#[test]
fn multilevel_partitions_work_inside_the_engine() {
    let graph = Arc::new(generate::friendster_like().generate_scaled(0.01));
    let partition = Arc::new(Multilevel::default().partition(&graph, 4));
    let run =
        IterationEngine::default_for(graph.clone(), partition).run(&apps::ConnectedComponents);
    assert_eq!(run.values, traversal::connected_components(&graph));
}

#[test]
fn config_knobs_change_behaviour_sanely() {
    let g = generate::twitter_like().generate_scaled(0.02);
    let loose = Multilevel::new(MultilevelConfig {
        imbalance: 0.2,
        ..Default::default()
    })
    .partition(&g, 8);
    let tight = Multilevel::new(MultilevelConfig {
        imbalance: 0.01,
        ..Default::default()
    })
    .partition(&g, 8);
    let loose_bias = metrics::bias(loose.vertex_counts());
    let tight_bias = metrics::bias(tight.vertex_counts());
    assert!(
        tight_bias <= 0.02,
        "tight imbalance must bind: {tight_bias}"
    );
    assert!(
        loose_bias <= 0.25,
        "loose imbalance is still bounded: {loose_bias}"
    );
    // Extra refinement never worsens the cut.
    let none = Multilevel::new(MultilevelConfig {
        refine_passes: 0,
        ..Default::default()
    })
    .partition(&g, 8);
    let many = Multilevel::new(MultilevelConfig {
        refine_passes: 6,
        ..Default::default()
    })
    .partition(&g, 8);
    assert!(metrics::edge_cut_ratio(&g, &many) <= metrics::edge_cut_ratio(&g, &none) + 1e-9);
}
