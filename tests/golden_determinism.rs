//! Golden determinism tests: fixed seeds must keep producing byte-for-byte
//! identical graphs and partitions across releases, because every recorded
//! experiment in EXPERIMENTS.md depends on it.
//!
//! Only integer-arithmetic pipelines are pinned to exact hashes (generator,
//! chunkers, hash partitioner). The float-scoring schemes (Fennel, BPart)
//! are checked for self-consistency instead, since `powf` may differ
//! across libm implementations.

use bpart_core::prelude::*;
use bpart_graph::generate;

/// FNV-1a over little-endian u32 words.
fn fnv(data: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in data {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn graph_hash(g: &bpart_graph::CsrGraph) -> u64 {
    let edges: Vec<u32> = g.edges().flat_map(|(u, v)| [u, v]).collect();
    fnv(&edges)
}

#[test]
fn generator_output_is_pinned() {
    let g = generate::twitter_like().generate_scaled(0.02);
    assert_eq!(g.num_vertices(), 2_000);
    assert_eq!(g.num_edges(), 71_440);
    assert_eq!(
        graph_hash(&g),
        0xf763_8149_1963_70ef,
        "twitter_like @ 0.02 changed — update EXPERIMENTS.md if intentional"
    );
}

#[test]
fn integer_partitioners_are_pinned() {
    let g = generate::twitter_like().generate_scaled(0.02);
    let cases: [(&dyn Partitioner, u64); 3] = [
        (&ChunkV, 0x71ba_b13a_e7a7_cc65),
        (&ChunkE, 0x131d_68e6_fd77_2ae7),
        (&HashPartitioner::default(), 0x9c97_4416_40aa_faa1),
    ];
    for (scheme, expected) in cases {
        let p = scheme.partition(&g, 8);
        assert_eq!(
            fnv(p.assignment()),
            expected,
            "{} assignment changed — update EXPERIMENTS.md if intentional",
            scheme.name()
        );
    }
}

#[test]
fn float_partitioners_are_run_to_run_stable() {
    let g = generate::twitter_like().generate_scaled(0.02);
    for scheme in [&Fennel::default() as &dyn Partitioner, &BPart::default()] {
        let a = scheme.partition(&g, 8);
        let b = scheme.partition(&g, 8);
        assert_eq!(
            fnv(a.assignment()),
            fnv(b.assignment()),
            "{} must be deterministic within a build",
            scheme.name()
        );
    }
}
