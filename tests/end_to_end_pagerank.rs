//! Cross-crate integration: the Gemini-like engine computes identical
//! analysis results under every partitioning scheme, on every dataset, and
//! matches single-machine reference implementations.

use bpart_bench::schemes_with_multilevel;
use bpart_core::Partitioner;
use bpart_engine::{apps, IterationEngine};
use bpart_graph::{generate, traversal};
use std::sync::Arc;

#[test]
fn pagerank_matches_reference_under_every_scheme() {
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
    let expected = apps::reference_pagerank(&graph, 0.85, 10);
    for scheme in schemes_with_multilevel() {
        let partition = Arc::new(scheme.partition(&graph, 8));
        let run =
            IterationEngine::default_for(graph.clone(), partition).run(&apps::PageRank::new(10));
        for (v, (got, want)) in run.values.iter().zip(&expected).enumerate() {
            assert!(
                (got - want).abs() < 1e-9,
                "{} vertex {v}: {got} vs {want}",
                scheme.name()
            );
        }
    }
}

#[test]
fn pagerank_mass_is_conserved_with_dangling_vertices() {
    // Chung-Lu graphs contain zero-out-degree vertices; the dangling
    // aggregate must keep total rank at 1 across iterations.
    let graph = Arc::new(generate::lj_like().generate_scaled(0.01));
    let partition = Arc::new(bpart_core::BPart::default().partition(&graph, 4));
    let run = IterationEngine::default_for(graph, partition).run(&apps::PageRank::new(15));
    let total: f64 = run.values.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "total rank {total}");
}

#[test]
fn connected_components_match_reference_under_every_scheme() {
    let graph = Arc::new(generate::friendster_like().generate_scaled(0.01));
    let expected = traversal::connected_components(&graph);
    for scheme in schemes_with_multilevel() {
        let partition = Arc::new(scheme.partition(&graph, 6));
        let run =
            IterationEngine::default_for(graph.clone(), partition).run(&apps::ConnectedComponents);
        assert_eq!(run.values, expected, "{}", scheme.name());
    }
}

#[test]
fn bfs_and_sssp_match_references() {
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
    let partition = Arc::new(bpart_core::Fennel::default().partition(&graph, 4));
    let engine = IterationEngine::default_for(graph.clone(), partition);

    let bfs = engine.run(&apps::Bfs::new(0));
    assert_eq!(bfs.values, traversal::bfs_distances(&graph, 0));

    let sssp = engine.run(&apps::Sssp::new(0));
    assert_eq!(sssp.values, apps::reference_sssp(&graph, 0, 8));
}

#[test]
fn balanced_partitions_reduce_modelled_pagerank_waiting() {
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.05));
    let waiting = |p: bpart_core::Partition| {
        IterationEngine::default_for(graph.clone(), Arc::new(p))
            .run(&apps::PageRank::new(5))
            .telemetry
            .waiting_ratio()
    };
    let chunkv = waiting(bpart_core::ChunkV.partition(&graph, 8));
    let bpart = waiting(bpart_core::BPart::default().partition(&graph, 8));
    assert!(
        bpart < chunkv * 0.5,
        "bpart waiting {bpart} should be far below chunk-v {chunkv}"
    );
}
