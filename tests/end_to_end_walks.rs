//! Cross-crate integration: the KnightKing-like walk engine's trajectories
//! are partition-invariant; only load distribution and traffic change.

use bpart_bench::schemes_with_multilevel;
use bpart_core::prelude::*;
use bpart_graph::generate;
use bpart_walker::{apps, WalkEngine, WalkStarts};
use std::sync::Arc;

#[test]
fn walk_paths_are_identical_under_every_scheme() {
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
    let starts = WalkStarts::PerVertex(2);
    let mut reference: Option<Vec<Vec<u32>>> = None;
    for scheme in schemes_with_multilevel() {
        let partition = Arc::new(scheme.partition(&graph, 8));
        let run = WalkEngine::default_for(graph.clone(), partition)
            .with_recording()
            .run(&apps::DeepWalk::new(8), &starts, 99);
        let paths = run.paths.unwrap();
        match &reference {
            None => reference = Some(paths),
            Some(r) => assert_eq!(r, &paths, "{}", scheme.name()),
        }
    }
}

#[test]
fn every_paper_walk_app_runs_under_every_scheme() {
    let graph = Arc::new(generate::lj_like().generate_scaled(0.01));
    for scheme in schemes_with_multilevel() {
        let partition = Arc::new(scheme.partition(&graph, 4));
        let engine = WalkEngine::default_for(graph.clone(), partition);
        for app in apps::paper_suite(6) {
            let run = engine.run(app.as_ref(), &WalkStarts::PerVertex(1), 7);
            assert!(run.total_steps > 0, "{} / {}", scheme.name(), app.name());
            assert!(
                run.iterations <= 6,
                "{} / {}: {} iterations for 6-step walks",
                scheme.name(),
                app.name(),
                run.iterations
            );
        }
    }
}

#[test]
fn message_walks_scale_with_edge_cut() {
    // More cut edges => more transmitted walkers (Fig. 5's causal chain).
    let graph = Arc::new(generate::friendster_like().generate_scaled(0.02));
    let traffic = |p: Partition| {
        let cut = metrics::edge_cut_ratio(&graph, &p);
        let run = WalkEngine::default_for(graph.clone(), Arc::new(p)).run(
            &apps::SimpleRandomWalk::new(4),
            &WalkStarts::PerVertex(5),
            3,
        );
        (cut, run.message_walks)
    };
    let (fennel_cut, fennel_msgs) = traffic(Fennel::default().partition(&graph, 8));
    let (hash_cut, hash_msgs) = traffic(HashPartitioner::default().partition(&graph, 8));
    assert!(fennel_cut < hash_cut);
    assert!(
        fennel_msgs < hash_msgs,
        "fewer cuts must mean fewer transmitted walks: {fennel_msgs} vs {hash_msgs}"
    );
}

#[test]
fn ppr_stops_early_and_respects_the_cap() {
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
    let partition = Arc::new(BPart::default().partition(&graph, 4));
    let run = WalkEngine::default_for(graph.clone(), partition).run(
        &apps::Ppr::new(0.1, 100),
        &WalkStarts::PerVertex(1),
        5,
    );
    // Expected geometric mean length ~9 << 100-step cap.
    let avg = run.total_steps as f64 / graph.num_vertices() as f64;
    assert!((5.0..20.0).contains(&avg), "avg walk length {avg}");
    assert!(run.iterations < 100);
}

#[test]
fn balanced_partition_cuts_walker_waiting_time() {
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.05));
    let waiting = |p: Partition| {
        WalkEngine::default_for(graph.clone(), Arc::new(p))
            .run(
                &apps::SimpleRandomWalk::new(4),
                &WalkStarts::PerVertex(5),
                1,
            )
            .telemetry
            .waiting_ratio()
    };
    let chunke = waiting(ChunkE.partition(&graph, 8));
    let bpart = waiting(BPart::default().partition(&graph, 8));
    assert!(bpart < chunke * 0.5, "bpart {bpart} vs chunk-e {chunke}");
}
