//! Cross-crate integration for the BSP simulator: conservation laws,
//! telemetry consistency, and sequential/threaded equivalence through a
//! full engine run.

use bpart_cluster::exec::ExecMode;
use bpart_cluster::{Cluster, CostModel};
use bpart_core::prelude::*;
use bpart_engine::{apps, IterationEngine};
use bpart_graph::generate;
use bpart_walker::{apps as wapps, WalkEngine, WalkStarts};
use std::sync::Arc;

#[test]
fn walk_steps_are_conserved_across_machines() {
    // Total steps = sum over iterations of per-machine compute (at unit
    // step cost), regardless of partitioning.
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.02));
    for k in [2usize, 8] {
        let partition = Arc::new(HashPartitioner::default().partition(&graph, k));
        let run = WalkEngine::default_for(graph.clone(), partition).run(
            &wapps::SimpleRandomWalk::new(4),
            &WalkStarts::PerVertex(3),
            11,
        );
        let telemetry_steps: f64 = run
            .telemetry
            .records()
            .iter()
            .flat_map(|r| r.compute.clone())
            .sum();
        assert_eq!(telemetry_steps as u64, run.total_steps, "k = {k}");
    }
}

#[test]
fn message_totals_agree_between_run_and_telemetry() {
    let graph = Arc::new(generate::lj_like().generate_scaled(0.02));
    let partition = Arc::new(ChunkV.partition(&graph, 4));
    let run = WalkEngine::default_for(graph.clone(), partition).run(
        &wapps::SimpleRandomWalk::new(4),
        &WalkStarts::PerVertex(2),
        3,
    );
    assert_eq!(run.message_walks, run.telemetry.total_messages());
}

#[test]
fn waiting_ratio_is_a_fraction_and_zero_for_one_machine() {
    let graph = Arc::new(generate::friendster_like().generate_scaled(0.02));
    let one = Arc::new(ChunkV.partition(&graph, 1));
    let run = WalkEngine::default_for(graph.clone(), one).run(
        &wapps::SimpleRandomWalk::new(4),
        &WalkStarts::PerVertex(1),
        5,
    );
    assert_eq!(run.telemetry.waiting_ratio(), 0.0);

    let eight = Arc::new(ChunkV.partition(&graph, 8));
    let run = WalkEngine::default_for(graph.clone(), eight).run(
        &wapps::SimpleRandomWalk::new(4),
        &WalkStarts::PerVertex(1),
        5,
    );
    let ratio = run.telemetry.waiting_ratio();
    assert!((0.0..1.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn threaded_engine_matches_sequential_results_exactly() {
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.02));
    let partition = Arc::new(BPart::default().partition(&graph, 6));
    let seq = IterationEngine::new(
        Cluster::new(graph.clone(), partition.clone()),
        CostModel::default(),
        ExecMode::Sequential,
    )
    .run(&apps::PageRank::new(8));
    let thr = IterationEngine::new(
        Cluster::new(graph.clone(), partition),
        CostModel::default(),
        ExecMode::Threaded,
    )
    .run(&apps::PageRank::new(8));
    assert_eq!(seq.values, thr.values);
    assert_eq!(seq.telemetry.total_time(), thr.telemetry.total_time());
}

#[test]
fn threaded_walker_matches_sequential_paths_exactly() {
    let graph = Arc::new(generate::lj_like().generate_scaled(0.02));
    let partition = Arc::new(Fennel::default().partition(&graph, 6));
    let run_with = |mode: ExecMode| {
        WalkEngine::new(
            Cluster::new(graph.clone(), partition.clone()),
            CostModel::default(),
            mode,
        )
        .with_recording()
        .run(
            &wapps::Node2vec::new(2.0, 0.5, 6),
            &WalkStarts::PerVertex(1),
            17,
        )
    };
    let seq = run_with(ExecMode::Sequential);
    let thr = run_with(ExecMode::Threaded);
    assert_eq!(seq.paths, thr.paths);
    assert_eq!(seq.message_walks, thr.message_walks);
}

#[test]
fn cost_model_scales_modelled_time_linearly() {
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
    let partition = Arc::new(ChunkE.partition(&graph, 4));
    let cheap = CostModel {
        message_cost: 0.0,
        ..CostModel::default()
    };
    let base = WalkEngine::new(
        Cluster::new(graph.clone(), partition.clone()),
        cheap,
        ExecMode::Sequential,
    )
    .run(
        &wapps::SimpleRandomWalk::new(4),
        &WalkStarts::PerVertex(1),
        2,
    );
    let double = CostModel {
        step_cost: 2.0,
        message_cost: 0.0,
        ..CostModel::default()
    };
    let scaled = WalkEngine::new(
        Cluster::new(graph.clone(), partition),
        double,
        ExecMode::Sequential,
    )
    .run(
        &wapps::SimpleRandomWalk::new(4),
        &WalkStarts::PerVertex(1),
        2,
    );
    let t1 = base.telemetry.total_time();
    let t2 = scaled.telemetry.total_time();
    assert!((t2 - 2.0 * t1).abs() < 1e-9, "{t2} vs 2 x {t1}");
}
