//! Cross-crate integration: every partitioner produces a valid partition
//! on every graph family and part count.

use bpart_bench::schemes_with_multilevel;
use bpart_core::{metrics, Partitioner};
use bpart_graph::{generate, CsrGraph};

fn graph_zoo() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("ring", generate::ring(64)),
        ("star", generate::star(63)),
        ("path", generate::path(64)),
        ("grid", generate::grid(8, 8)),
        ("complete", generate::complete(16)),
        ("erdos_renyi", generate::erdos_renyi(300, 2_000, 7)),
        (
            "rmat",
            generate::rmat(&generate::RmatConfig::new(9, 4_000, 3)),
        ),
        ("barabasi_albert", generate::barabasi_albert(300, 3, 5)),
        (
            "twitter_like",
            generate::twitter_like().generate_scaled(0.01),
        ),
    ]
}

#[test]
fn every_scheme_covers_every_graph() {
    for (gname, graph) in graph_zoo() {
        for scheme in schemes_with_multilevel() {
            for k in [1usize, 2, 5, 8] {
                let p = scheme.partition(&graph, k);
                p.validate(&graph)
                    .unwrap_or_else(|e| panic!("{} on {gname} k={k}: {e}", scheme.name()));
                assert_eq!(p.num_parts(), k);
            }
        }
    }
}

#[test]
fn partitioners_are_deterministic_across_calls() {
    let graph = generate::lj_like().generate_scaled(0.01);
    for scheme in schemes_with_multilevel() {
        let a = scheme.partition(&graph, 6);
        let b = scheme.partition(&graph, 6);
        assert_eq!(a, b, "{} must be deterministic", scheme.name());
    }
}

#[test]
fn cut_ratios_are_sane_probabilities() {
    let graph = generate::twitter_like().generate_scaled(0.01);
    for scheme in schemes_with_multilevel() {
        let p = scheme.partition(&graph, 8);
        let cut = metrics::edge_cut_ratio(&graph, &p);
        assert!((0.0..=1.0).contains(&cut), "{}: cut {cut}", scheme.name());
    }
}

#[test]
fn single_part_has_no_cut_for_any_scheme() {
    let graph = generate::erdos_renyi(100, 800, 1);
    for scheme in schemes_with_multilevel() {
        let p = scheme.partition(&graph, 1);
        assert_eq!(metrics::edge_cut_count(&graph, &p), 0, "{}", scheme.name());
    }
}

#[test]
fn empty_and_tiny_graphs_do_not_break_partitioners() {
    let empty = CsrGraph::from_edges(0, &[]);
    let single = CsrGraph::from_edges(1, &[]);
    for scheme in schemes_with_multilevel() {
        let p = scheme.partition(&empty, 3);
        assert_eq!(p.num_vertices(), 0, "{} on empty", scheme.name());
        let p = scheme.partition(&single, 3);
        assert_eq!(p.num_vertices(), 1, "{} on single", scheme.name());
    }
}
