//! Cross-crate integration: the paper's headline balance claims, checked
//! end-to-end on all three dataset stand-ins.

use bpart_core::prelude::*;
use bpart_graph::generate;
use proptest::prelude::*;

const SCALE: f64 = 0.05;

#[test]
fn bpart_is_two_dimensionally_balanced_on_all_presets() {
    for preset in generate::ALL_PRESETS {
        let g = preset().generate_scaled(SCALE);
        for k in [4usize, 8, 16] {
            let p = BPart::default().partition(&g, k);
            let q = metrics::quality(&g, &p);
            assert!(
                q.vertex_bias < 0.12,
                "{} k={k}: vertex bias {}",
                preset().name,
                q.vertex_bias
            );
            assert!(
                q.edge_bias < 0.12,
                "{} k={k}: edge bias {}",
                preset().name,
                q.edge_bias
            );
        }
    }
}

#[test]
fn baselines_fail_in_exactly_one_dimension() {
    let g = generate::twitter_like().generate_scaled(SCALE);
    // Chunk-V / Fennel: vertices balanced, edges not.
    for scheme in [&ChunkV as &dyn Partitioner, &Fennel::default()] {
        let p = scheme.partition(&g, 8);
        assert!(metrics::bias(p.vertex_counts()) < 0.15, "{}", scheme.name());
        assert!(metrics::bias(p.edge_counts()) > 0.5, "{}", scheme.name());
    }
    // Chunk-E: edges balanced, vertices not.
    let p = ChunkE.partition(&g, 8);
    assert!(metrics::bias(p.edge_counts()) < 0.15);
    assert!(metrics::bias(p.vertex_counts()) > 0.5);
}

#[test]
fn bpart_jain_fairness_stays_near_one_for_large_k() {
    let g = generate::twitter_like().generate_scaled(0.2);
    for k in [8usize, 32, 128] {
        let p = BPart::default().partition(&g, k);
        assert!(
            metrics::jain_fairness(p.vertex_counts()) > 0.98,
            "k={k} vertex fairness"
        );
        assert!(
            metrics::jain_fairness(p.edge_counts()) > 0.98,
            "k={k} edge fairness"
        );
    }
}

#[test]
fn bpart_cut_sits_between_fennel_and_hash() {
    let g = generate::friendster_like().generate_scaled(SCALE);
    let cut = |s: &dyn Partitioner| metrics::edge_cut_ratio(&g, &s.partition(&g, 8));
    let fennel = cut(&Fennel::default());
    let bpart = cut(&BPart::default());
    let hash = cut(&HashPartitioner::default());
    // BPart trades some cut for balance, so it should not beat Fennel by
    // much (at small scales they can tie) and must clearly beat Hash.
    assert!(bpart > fennel * 0.9, "fennel {fennel} vs bpart {bpart}");
    assert!(bpart < hash * 0.85, "bpart {bpart} < hash {hash}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bias and Jain fairness agree on which of two partitions is more
    /// balanced in the perfectly-correlated two-part case, and BPart's
    /// output always beats Chunk-V's edge balance on skewed graphs.
    #[test]
    fn bpart_never_loses_to_chunkv_on_edge_balance(seed in 0u64..1000, k in 2usize..10) {
        let g = bpart_graph::generate::chung_lu(&bpart_graph::generate::ChungLuConfig {
            exponent_s: 0.9,
            max_degree: 200.0,
            ..bpart_graph::generate::ChungLuConfig::new(2_000, 30_000, seed)
        });
        let bpart = BPart::default().partition(&g, k);
        let chunkv = ChunkV.partition(&g, k);
        let b = metrics::bias(bpart.edge_counts());
        let c = metrics::bias(chunkv.edge_counts());
        prop_assert!(b <= c + 0.05, "seed {seed} k {k}: bpart {b} vs chunkv {c}");
    }

    /// The partition invariants hold for arbitrary ER graphs and k.
    #[test]
    fn partition_tallies_always_conserve(seed in 0u64..1000, k in 1usize..12) {
        let g = bpart_graph::generate::erdos_renyi(150, 900, seed);
        let p = BPart::default().partition(&g, k);
        prop_assert!(p.validate(&g).is_ok());
        prop_assert_eq!(p.vertex_counts().iter().sum::<u64>(), 150);
        prop_assert_eq!(p.edge_counts().iter().sum::<u64>(), 900);
    }
}
