//! Offline stand-in for `crossbeam` (API-compatible subset over std).
//!
//! The build environment has no access to crates.io. Only
//! [`thread::scope`] is provided, built on `std::thread::scope`
//! (stable since 1.63) with crossbeam's semantics: a panicking child
//! thread is captured and surfaced through its handle's `join()` instead
//! of aborting the scope.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Payload of a panicked thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Scope handle passed to the closure and to each spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        std: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: `derive(Copy)` would bound on the lifetimes' types.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to one spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Result<T, PanicPayload>>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread; a child panic comes back as `Err` with
        /// the panic payload (crossbeam semantics).
        pub fn join(self) -> Result<T, PanicPayload> {
            match self.inner.join() {
                Ok(result) => result,
                Err(payload) => Err(payload),
            }
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so it
        /// could spawn siblings), and its panic is captured rather than
        /// propagated.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self
                    .std
                    .spawn(move || catch_unwind(AssertUnwindSafe(|| f(&scope)))),
            }
        }
    }

    /// Runs `f` with a scope in which threads borrowing local state can be
    /// spawned; all are joined before `scope` returns. Child panics are
    /// reported through each handle's `join()`, never here — the outer
    /// `Result` only reflects unjoined-child panics, which this
    /// implementation converts to `Ok` after capture, matching how the
    /// workspace (and most crossbeam users) consume the API.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { std: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_locals() {
        let mut values = [1u64, 2, 3];
        let out = thread::scope(|scope| {
            let handles: Vec<_> = values
                .iter_mut()
                .map(|v| scope.spawn(move |_| *v * 10))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn child_panic_is_captured_in_join() {
        let result = thread::scope(|scope| {
            let ok = scope.spawn(|_| 7u32);
            let bad = scope.spawn(|_| -> u32 { panic!("child died") });
            (ok.join(), bad.join())
        })
        .unwrap();
        assert_eq!(result.0.unwrap(), 7);
        let payload = result.1.unwrap_err();
        assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "child died");
    }
}
