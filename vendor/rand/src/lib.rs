//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` 0.10 it actually uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] / [`RngExt`]
//! traits with `random`, `random_range` and `random_bool`, and the
//! [`rand_core::TryRng`] fallible core trait with its infallible blanket
//! impl. The generator is xoshiro256++ (seeded through SplitMix64) —
//! different output stream than upstream `StdRng`, but every consumer in
//! this workspace only relies on determinism and statistical uniformity,
//! never on the exact stream.

use std::ops::{Range, RangeInclusive};

pub mod rand_core {
    /// Fallible random core (rand_core 0.10 style). Infallible sources set
    /// `Error = Infallible` and get [`crate::Rng`] via the blanket impl.
    pub trait TryRng {
        type Error: std::fmt::Debug;

        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
    }
}

/// An infallible random source.
pub trait Rng {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T> Rng for T
where
    T: rand_core::TryRng<Error = std::convert::Infallible>,
{
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(x) => x,
        }
    }
    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(x) => x,
        }
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => (),
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly sampleable over a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Multiply-shift bound; bias is < 2^-64 per draw.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + draw
            }
            #[inline]
            fn successor(self) -> Self {
                self + 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_half_open(rng, lo, hi.successor())
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn random_bool(&mut self, probability: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        self.random::<f64>() < probability
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (SplitMix64-expanded seed).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0u64..=4);
            assert!(y <= 4);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits {hits}");
    }
}
