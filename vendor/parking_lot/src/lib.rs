//! Offline stand-in for `parking_lot` (API-compatible subset over std).
//!
//! The build environment has no access to crates.io. This wrapper keeps
//! parking_lot's poison-free `lock()` signature by recovering the guard
//! from a poisoned std mutex (parking_lot has no poisoning at all).

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> StdGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard alias matching parking_lot's name.
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
