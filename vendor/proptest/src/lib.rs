//! Offline stand-in for `proptest` (API-compatible subset).
//!
//! The build environment has no access to crates.io, so this crate
//! implements the slice of proptest the workspace uses: the `proptest!`
//! macro with an optional `#![proptest_config(..)]` attribute, the
//! [`Strategy`] trait implemented for integer/float ranges, tuples and
//! `prop::collection::vec`, plus `prop_assert!`, `prop_assert_eq!` and
//! `prop_assume!`. Cases are generated from a deterministic per-test RNG
//! (seeded from the test name), so failures reproduce across runs.
//! There is no shrinking: a failing case reports the generated inputs via
//! `Debug` and panics.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// A `prop_assert*!` failed; the whole test fails.
    Fail(String),
}

/// Test-case result type the `proptest!` body closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from the test name (stable across runs and platforms).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `generate` yields the value directly.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection size specification: a fixed size or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub mod strategy {
    pub use crate::{Just, Strategy};
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::fmt;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)` — `len` may be a `usize` or a
    /// `usize` range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::` namespace mirror (`prop::collection::vec(..)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    /// Real proptest re-exports itself under `prelude` for macro hygiene.
    pub use crate as proptest;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The test-harness macro. Supports the subset:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0u8..5, 0..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest {}: gave up after {} attempts ({} cases passed); \
                         prop_assume! rejects too much input",
                        stringify!($name), attempts, passed
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let debug_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ "case = {}"),
                        $(&$arg,)+ passed
                    );
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest {} failed: {}\n  inputs: {}",
                                stringify!($name), message, debug_inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_honoured(x in 3u32..17, y in 0u64..=4, f in 0.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.0..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec((0u32..6, 0u16..100), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for (a, b) in &v {
                prop_assert!(*a < 6 && *b < 100);
            }
        }

        #[test]
        fn fixed_size_vecs(v in prop::collection::vec(0.0f64..1.0, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn assume_redraws(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("seed-name");
        let mut b = TestRng::deterministic("seed-name");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest failing_case failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            @with_config (ProptestConfig::with_cases(4))
            #[allow(unreachable_code)]
            fn failing_case(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        failing_case();
    }
}
