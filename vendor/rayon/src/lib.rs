//! Offline stand-in for `rayon` (API-compatible subset, sequential).
//!
//! The build environment has no access to crates.io, so this crate
//! provides the `into_par_iter` / `par_sort_unstable` surface the
//! workspace uses, executing sequentially. Results are identical to
//! rayon's (the workspace only uses order-insensitive reductions and
//! sorts); only wall-clock parallelism is lost, which the simulator's
//! cost model never measures.

pub mod prelude {
    /// `into_par_iter()` that hands back the plain sequential iterator;
    /// `map`/`filter`/`sum`/`collect` then come from [`Iterator`].
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// Parallel slice sorting, sequential under the hood.
    pub trait ParallelSliceMut<T> {
        fn as_sequential_mut_slice(&mut self) -> &mut [T];

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.as_sequential_mut_slice().sort_unstable();
        }

        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F)
        where
            T: Send,
        {
            self.as_sequential_mut_slice().sort_unstable_by_key(f);
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn as_sequential_mut_slice(&mut self) -> &mut [T] {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_behaves_like_iter() {
        let sum: u64 = (0u64..100).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(sum, 9900);
        let v: Vec<usize> = (0..4).into_par_iter().collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn par_sort_unstable_sorts() {
        let mut v = vec![3, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
