//! Offline stand-in for `criterion` (API-compatible subset).
//!
//! The build environment has no access to crates.io. This harness keeps
//! the workspace's benches compiling and runnable: each benchmark runs a
//! small fixed number of timed iterations and prints mean wall time per
//! iteration. No statistics, outlier analysis, or HTML reports.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (std-backed).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into().label, f)
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.label, |b| f(b, input))
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size.min(self.criterion.max_samples),
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters > 0 {
            bencher.total / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{label}: {mean:?}/iter{throughput}", self.name);
        self
    }

    pub fn finish(&mut self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] for `bench_function`.
pub struct BenchId {
    label: String,
}

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId { label: s.into() }
    }
}

impl From<String> for BenchId {
    fn from(label: String) -> Self {
        BenchId { label }
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId { label: id.label }
    }
}

/// The benchmark driver.
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `BPART_BENCH_SAMPLES` caps work when smoke-testing benches.
        let max_samples = std::env::var("BPART_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Criterion { max_samples }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Criterion's CLI entry point; arguments are ignored here.
    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &2u64, |b, &two| {
            b.iter(|| {
                runs += 1;
                black_box(two * 2)
            })
        });
        group.finish();
        assert!(runs >= 3);
    }
}
